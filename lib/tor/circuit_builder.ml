type outcome =
  | Established of { at : Engine.Time.t }
  | Refused of { at : Engine.Time.t; reason : Cell.refusal_reason }
  | Gone of { at : Engine.Time.t; node : Netsim.Node_id.t }
  | Failed of string

let build sb (circuit : Circuit.t) ?(timeout = Engine.Time.s 30) ~on_done () =
  if not (Netsim.Node_id.equal (Switchboard.node sb) circuit.client) then
    invalid_arg "Circuit_builder.build: switchboard does not belong to the client";
  let sim = Netsim.Network.sim (Switchboard.network sb) in
  let guard =
    match circuit.relays with r :: _ -> r.Relay_info.node | [] -> assert false
  in
  (* Targets still to be attached, beyond the guard. *)
  let remaining =
    ref (List.tl (List.map (fun (r : Relay_info.t) -> r.Relay_info.node) circuit.relays)
        @ [ circuit.server ])
  in
  let finished = ref false in
  let finish outcome =
    if not !finished then begin
      finished := true;
      Switchboard.unregister_circuit sb circuit.id;
      on_done outcome
    end
  in
  let watchdog =
    Engine.Sim.schedule_after sim timeout (fun () ->
        (* Tear down the half-built prefix: a DESTROY from the client
           walks the chain of relay routing entries and removes them,
           so a timed-out attempt leaves no orphaned state behind (it
           stops at a crashed relay, whose table is gone anyway). *)
        Switchboard.send_cell sb ~dst:guard (Cell.make circuit.id Cell.Destroy);
        finish (Failed "circuit establishment timed out"))
  in
  (* The node the outstanding CREATE/EXTEND is addressed to — the one a
     REFUSED or GONE answer is about. *)
  let current_target = ref guard in
  let extend_next () =
    match !remaining with
    | [] ->
        Engine.Sim.cancel sim watchdog;
        finish (Established { at = Engine.Sim.now sim })
    | next :: rest ->
        remaining := rest;
        current_target := next;
        Switchboard.send_cell sb ~dst:guard
          (Cell.make circuit.id (Cell.Extend { next }))
  in
  (* Nodes attached so far: one per CREATED/EXTENDED received.  When a
     refusal arrives we only need to DESTROY if a prefix exists. *)
  let attached = ref 0 in
  let teardown_prefix () =
    Engine.Sim.cancel sim watchdog;
    if !attached > 0 then
      Switchboard.send_cell sb ~dst:guard (Cell.make circuit.id Cell.Destroy)
  in
  let handler ~from (cell : Cell.t) =
    if Netsim.Node_id.equal from guard then
      match cell.command with
      | Cell.Created | Cell.Extended ->
          incr attached;
          extend_next ()
      | Cell.Refused { reason } ->
          (* Some node along the ladder is over budget (or draining).
             The refusing relay kept no state and its predecessor
             rolled back, so only the attached prefix needs tearing
             down.  Distinct from [Failed]: the path is healthy, just
             unavailable right now — the caller should retry elsewhere
             without suspecting anyone of being dead. *)
          teardown_prefix ();
          finish (Refused { at = Engine.Sim.now sim; reason })
      | Cell.Gone ->
          (* The extension target has cleanly left the network: same
             rollback discipline as a refusal, but the answer names a
             relay that will stay gone until it restarts — the caller
             should exclude it, not merely retry. *)
          teardown_prefix ();
          finish (Gone { at = Engine.Sim.now sim; node = !current_target })
      | Cell.Destroy -> finish (Failed "circuit destroyed during establishment")
      | Cell.Create | Cell.Extend _ | Cell.Relay _ -> ()
  in
  Switchboard.register_circuit sb circuit.id handler;
  Switchboard.send_cell sb ~dst:guard (Cell.make circuit.id Cell.Create)

(** The seeded churn schedule for packet-level worlds.

    Drives joins, clean departures (graceful drain), crashes and
    restarts against a set of live relays and their {!Directory}: one
    Bernoulli trial per controlled relay per tick, walked in a fixed
    order, so the entire schedule is a deterministic function of the
    driver's {!Engine.Rng.t} — byte-identical across [--jobs].

    A clean departure marks the relay [Draining] ({!Relay_ctl.begin_drain}:
    new CREATEs bounce with [Refused (Draining)], existing circuits keep
    forwarding) and arms a drain deadline; when it passes, the driver
    calls {!Relay_ctl.finish_drain} (surviving circuits destroyed toward
    both neighbours, all state released, node departed — later setup
    attempts answer {!Cell.Gone}) and marks the relay [Down].  A crash
    skips the drain: {!Relay_ctl.crash} plus [mark_down], exercising the
    timeout-driven recovery path.  A down relay restarts with the join
    hazard: {!Relay_ctl.restart} plus {!Directory.mark_up}, bumping its
    incarnation so clients forgive old exclusions.

    An independent timer advances the directory epoch every
    [epoch_period], so clients select from a view that lags the live
    population by up to one period — the staleness that makes builds
    race departures. *)

type config = {
  leave_rate : float;
      (** Per-relay per-second hazard of leaving while [Up]. *)
  join_rate : float;
      (** Per-relay per-second hazard of restarting while [Down]. *)
  crash_fraction : float;
      (** Probability in [\[0, 1\]] that a departure is a crash rather
          than a graceful drain. *)
  drain_grace : Engine.Time.t;
      (** How long a draining relay keeps forwarding before its
          surviving circuits are destroyed. *)
  epoch_period : Engine.Time.t;  (** Directory snapshot refresh period. *)
  tick : Engine.Time.t;  (** Hazard-trial granularity. *)
  min_up : int;
      (** Departures are suppressed while at most this many controlled
          relays are [Up] — keeps tiny worlds path-feasible. *)
  horizon : Engine.Time.t;
      (** Ticks and epoch advances stop at this simulated time, so the
          event queue drains and the run terminates. *)
}

val default_config : config
(** leave 0.01/s, join 0.05/s, crash fraction 0.5, grace 5 s, epoch
    10 s, tick 1 s, min_up 3, horizon 120 s. *)

type t

val create :
  sim:Engine.Sim.t ->
  rng:Engine.Rng.t ->
  directory:Directory.t ->
  relays:(Relay_info.t * Relay_ctl.t) list ->
  config:config ->
  ?trace:Engine.Trace.t * string ->
  unit ->
  t
(** The driver controls exactly [relays] (fixed draw order = list
    order).  Raises [Invalid_argument] on nonsensical config. *)

val start : t -> unit
(** Arm the tick and epoch timers (each stops at the horizon or after
    {!stop}). *)

val stop : t -> unit
(** Let the timers lapse at their next firing. *)

val departs : t -> int
(** Departures begun (drains started plus crashes). *)

val crashes : t -> int

val drains_completed : t -> int
(** Drain deadlines reached (each destroyed the relay's survivors). *)

val restarts : t -> int

type handler = from:Netsim.Node_id.t -> Cell.t -> unit

type budget = { max_circuits : int option; max_queued_bytes : int option }

let no_budget = { max_circuits = None; max_queued_bytes = None }

(* The one admission predicate, shared by the relay CREATE path
   ([Relay_ctl.admits]) and by workloads that model relay occupancy
   with flat counters instead of live switchboards
   ([Workload.Network_experiment]). *)
let within_budget b ~circuits ~queued_bytes =
  (match b.max_circuits with Some cap -> circuits < cap | None -> true)
  && match b.max_queued_bytes with
     | Some cap -> queued_bytes <= cap
     | None -> true

(* Test-only escape hatch: while [true], budget *enforcement* (the
   overflow responder and admission refusals keyed off this module) is
   suppressed but the byte accounting keeps running — so the budget
   oracle can watch occupancy sail past the cap and prove it catches
   the regression.  Never set outside the harness. *)
let unsafe_disable_budget = ref false

type t = {
  net : Netsim.Network.t;
  node : Netsim.Node_id.t;
  circuits : (int, handler) Hashtbl.t;
  mutable control : handler option;
  mutable aux : (Netsim.Packet.t -> unit) option;
  mutable orphans : int;
  mutable down : bool;
  mutable departed : bool;
  mutable blackholed : int;
  mutable refused : int;
  mutable gone_replies : int;
  (* Resource accounting: bytes a data-plane sender at this node holds
     (backlog + in flight) per circuit, and their sum.  The per-circuit
     counter is a ref allocated on the circuit's first charge; the
     steady-state forwarding path only mutates it in place. *)
  occupancy : (int, int ref) Hashtbl.t;
  mutable queued_bytes : int;
  mutable byte_hwm : int;
  mutable budget : budget;
  mutable overloaded : bool;  (* queued_bytes > max_queued_bytes *)
  mutable on_overflow : (unit -> unit) option;
  mutable on_byte_overload : (bool -> unit) option;
  mutable data_kill : (Circuit_id.t -> unit) option;
}

(* Forward declaration: [dispatch] on a departed node replies GONE via
   [send_cell], defined below. *)
let rec dispatch t (p : Netsim.Packet.t) =
  if t.down then t.blackholed <- t.blackholed + 1
  else if t.departed then
    (* A cleanly departed relay: its listener is gone, but (unlike a
       crash) the neighbour gets an immediate, typed answer.  Circuit
       setup attempts bounce back as GONE on the same circuit id; all
       other traffic is dropped like a crash would drop it. *)
    match p.payload with
    | Cell.Wire ({ command = Cell.Create | Cell.Extend _; _ } as cell) ->
        t.gone_replies <- t.gone_replies + 1;
        send_cell t ~dst:p.src (Cell.make cell.circuit Cell.Gone)
    | _ -> t.blackholed <- t.blackholed + 1
  else
    match p.payload with
    | Cell.Wire cell -> (
        let key = Circuit_id.to_int cell.circuit in
        match Hashtbl.find_opt t.circuits key with
        | Some h -> h ~from:p.src cell
        | None -> (
            match t.control with
            | Some h -> h ~from:p.src cell
            | None -> t.orphans <- t.orphans + 1))
    | _ -> (
        match t.aux with
        | Some h -> h p
        | None -> t.orphans <- t.orphans + 1)

and send_payload t ?on_transmit ~dst ~size payload =
  if t.down then t.refused <- t.refused + 1
  else
    let p = Netsim.Network.make_packet t.net ~src:t.node ~dst ~size payload in
    Netsim.Network.send t.net ?on_transmit p

and send_cell t ~dst cell = send_payload t ~dst ~size:Cell.size (Cell.Wire cell)

let install net node =
  let t =
    { net; node; circuits = Hashtbl.create 16; control = None; aux = None;
      orphans = 0; down = false; departed = false; blackholed = 0; refused = 0;
      gone_replies = 0;
      occupancy = Hashtbl.create 16; queued_bytes = 0; byte_hwm = 0;
      budget = no_budget; overloaded = false; on_overflow = None;
      on_byte_overload = None; data_kill = None }
  in
  Netsim.Network.set_local_handler net node (dispatch t);
  t

let node t = t.node
let network t = t.net

let register_circuit t circuit h =
  let key = Circuit_id.to_int circuit in
  if Hashtbl.mem t.circuits key then
    invalid_arg
      (Format.asprintf "Switchboard.register_circuit: %a already registered at %a"
         Circuit_id.pp circuit Netsim.Node_id.pp t.node);
  Hashtbl.add t.circuits key h

let unregister_circuit t circuit = Hashtbl.remove t.circuits (Circuit_id.to_int circuit)
let set_control_handler t h = t.control <- Some h
let set_aux_handler t h = t.aux <- Some h

let orphan_cells t = t.orphans

let set_down t down = t.down <- down
let is_down t = t.down
let set_departed t departed = t.departed <- departed
let is_departed t = t.departed
let blackholed_cells t = t.blackholed
let refused_sends t = t.refused
let gone_replies t = t.gone_replies

(* --- resource accounting ------------------------------------------ *)

let set_budget t budget = t.budget <- budget
let budget t = t.budget
let queued_bytes t = t.queued_bytes
let byte_high_watermark t = t.byte_hwm
let byte_overloaded t = t.overloaded

let circuit_queued_bytes t circuit =
  match Hashtbl.find_opt t.occupancy (Circuit_id.to_int circuit) with
  | Some r -> !r
  | None -> 0

let set_on_overflow t f = t.on_overflow <- Some f
let set_on_byte_overload t f = t.on_byte_overload <- Some f
let set_data_kill t f = t.data_kill <- Some f

let kill_data t circuit =
  match t.data_kill with Some f -> f circuit | None -> ()

(* Recompute the byte-overload flag after a counter move; the hook only
   fires on transitions, so the hot path pays one comparison. *)
let refresh_overload t =
  let over =
    match t.budget.max_queued_bytes with
    | Some cap -> t.queued_bytes > cap
    | None -> false
  in
  if over <> t.overloaded then begin
    t.overloaded <- over;
    match t.on_byte_overload with Some f -> f over | None -> ()
  end

let charge t circuit bytes =
  let key = Circuit_id.to_int circuit in
  (match Hashtbl.find_opt t.occupancy key with
  | Some r -> r := !r + bytes
  | None -> Hashtbl.add t.occupancy key (ref bytes));
  t.queued_bytes <- t.queued_bytes + bytes;
  if t.queued_bytes > t.byte_hwm then t.byte_hwm <- t.queued_bytes;
  refresh_overload t;
  if t.overloaded && not !unsafe_disable_budget then
    match t.on_overflow with Some f -> f () | None -> ()

let credit t circuit bytes =
  (* A circuit whose entry was force-dropped ([drop_circuit_occupancy])
     may still see late credits from its sender: clamp to the entry's
     balance so those can never push the totals negative. *)
  (match Hashtbl.find_opt t.occupancy (Circuit_id.to_int circuit) with
  | Some r ->
      let applied = Stdlib.min bytes !r in
      r := !r - applied;
      t.queued_bytes <- t.queued_bytes - applied
  | None -> ());
  refresh_overload t

let drop_circuit_occupancy t circuit =
  let key = Circuit_id.to_int circuit in
  match Hashtbl.find_opt t.occupancy key with
  | Some r ->
      t.queued_bytes <- t.queued_bytes - !r;
      Hashtbl.remove t.occupancy key;
      refresh_overload t
  | None -> ()

(* The OOM victim: most queued bytes, ties broken towards the smallest
   circuit id so the choice is independent of hash iteration order. *)
let heaviest_circuit t =
  Hashtbl.fold
    (fun key r best ->
      match best with
      | Some (_, best_bytes) when !r < best_bytes -> best
      | Some (best_key, best_bytes) when !r = best_bytes && key > best_key ->
          best
      | _ -> Some (key, !r))
    t.occupancy None
  |> Option.map (fun (key, _) -> Circuit_id.of_int key)

type handler = from:Netsim.Node_id.t -> Cell.t -> unit

type t = {
  net : Netsim.Network.t;
  node : Netsim.Node_id.t;
  circuits : (int, handler) Hashtbl.t;
  mutable control : handler option;
  mutable aux : (Netsim.Packet.t -> unit) option;
  mutable orphans : int;
  mutable down : bool;
  mutable blackholed : int;
  mutable refused : int;
}

let dispatch t (p : Netsim.Packet.t) =
  if t.down then t.blackholed <- t.blackholed + 1
  else
    match p.payload with
    | Cell.Wire cell -> (
        let key = Circuit_id.to_int cell.circuit in
        match Hashtbl.find_opt t.circuits key with
        | Some h -> h ~from:p.src cell
        | None -> (
            match t.control with
            | Some h -> h ~from:p.src cell
            | None -> t.orphans <- t.orphans + 1))
    | _ -> (
        match t.aux with
        | Some h -> h p
        | None -> t.orphans <- t.orphans + 1)

let install net node =
  let t =
    { net; node; circuits = Hashtbl.create 16; control = None; aux = None;
      orphans = 0; down = false; blackholed = 0; refused = 0 }
  in
  Netsim.Network.set_local_handler net node (dispatch t);
  t

let node t = t.node
let network t = t.net

let register_circuit t circuit h =
  let key = Circuit_id.to_int circuit in
  if Hashtbl.mem t.circuits key then
    invalid_arg
      (Format.asprintf "Switchboard.register_circuit: %a already registered at %a"
         Circuit_id.pp circuit Netsim.Node_id.pp t.node);
  Hashtbl.add t.circuits key h

let unregister_circuit t circuit = Hashtbl.remove t.circuits (Circuit_id.to_int circuit)
let set_control_handler t h = t.control <- Some h
let set_aux_handler t h = t.aux <- Some h

let send_payload t ?on_transmit ~dst ~size payload =
  if t.down then t.refused <- t.refused + 1
  else
    let p = Netsim.Network.make_packet t.net ~src:t.node ~dst ~size payload in
    Netsim.Network.send t.net ?on_transmit p

let send_cell t ~dst cell = send_payload t ~dst ~size:Cell.size (Cell.Wire cell)
let orphan_cells t = t.orphans

let set_down t down = t.down <- down
let is_down t = t.down
let blackholed_cells t = t.blackholed
let refused_sends t = t.refused

type config = {
  circuit_window : int;
  stream_window : int;
  circuit_increment : int;
  stream_increment : int;
}

let default_config =
  { circuit_window = 1000; stream_window = 500; circuit_increment = 100;
    stream_increment = 50 }

let validate_config c =
  if c.circuit_window < 1 then Error "circuit_window must be positive"
  else if c.stream_window < 1 then Error "stream_window must be positive"
  else if c.circuit_increment < 1 || c.circuit_increment > c.circuit_window then
    Error "circuit_increment must be in [1, circuit_window]"
  else if c.stream_increment < 1 || c.stream_increment > c.stream_window then
    Error "stream_increment must be in [1, stream_window]"
  else Ok c

type t = {
  config : config;
  circuit : Circuit.t;
  source : Stream.Source.t;
  sink : Stream.Sink.t;
  sb_of : Netsim.Node_id.t -> Switchboard.t;
  sim : Engine.Sim.t;
  mutable circ_credit : int;
  mutable stream_credit : int;
  mutable started : bool;
  mutable first_sent_at : Engine.Time.t option;
  mutable sendmes : int;
  (* Server-side delivery counters that trigger SENDME emission. *)
  mutable circ_since_sendme : int;
  mutable stream_since_sendme : int;
  cell_departures : (int, Engine.Time.t) Hashtbl.t;
  cell_latency : Engine.Stats.Online.t;
}

let guard_node t =
  match t.circuit.Circuit.relays with
  | r :: _ -> r.Relay_info.node
  | [] -> assert false

(* Client pump: send while end-to-end credit and data remain.  The
   burst goes straight into the access link's queue — legacy Tor has no
   pacing below the window, which is exactly its failure mode. *)
let pump t =
  let client_sb = t.sb_of t.circuit.Circuit.client in
  let layers = Circuit.layer_count t.circuit in
  let rec go () =
    if t.circ_credit > 0 && t.stream_credit > 0 then
      match Stream.Source.next_cell t.source t.circuit.Circuit.id ~layers with
      | None -> ()
      | Some cell ->
          if t.first_sent_at = None then t.first_sent_at <- Some (Engine.Sim.now t.sim);
          t.circ_credit <- t.circ_credit - 1;
          t.stream_credit <- t.stream_credit - 1;
          (match Cell.relay_cmd cell with
          | Some (Cell.Relay_data { seq; _ }) ->
              (* Stamped at the send decision: legacy Tor's own access
                 queue is part of the latency it inflicts. *)
              Hashtbl.replace t.cell_departures seq (Engine.Sim.now t.sim)
          | Some (Cell.Relay_sendme _ | Cell.Relay_end _) | None -> ());
          Switchboard.send_cell client_sb ~dst:(guard_node t) cell;
          go ()
  in
  go ()

let client_handler t ~from:_ (cell : Cell.t) =
  match Cell.relay_cmd cell with
  | Some (Cell.Relay_sendme { stream_id = None }) ->
      t.sendmes <- t.sendmes + 1;
      t.circ_credit <- t.circ_credit + t.config.circuit_increment;
      pump t
  | Some (Cell.Relay_sendme { stream_id = Some _ }) ->
      t.sendmes <- t.sendmes + 1;
      t.stream_credit <- t.stream_credit + t.config.stream_increment;
      pump t
  | Some (Cell.Relay_data _ | Cell.Relay_end _) | None -> ()

(* A relay forwards data cells onward (peeling one layer) and SENDME
   credits backward, deciding direction by which neighbour delivered
   the cell. *)
let relay_handler t node ~from (cell : Cell.t) =
  let sb = t.sb_of node in
  let pred = Circuit.predecessor t.circuit node in
  let succ = Circuit.successor t.circuit node in
  let from_pred = match pred with Some p -> Netsim.Node_id.equal p from | None -> false in
  if from_pred then
    match succ with
    | Some next -> Switchboard.send_cell sb ~dst:next (Crypto_sim.peel cell)
    | None -> ()
  else
    match pred with
    | Some prev -> Switchboard.send_cell sb ~dst:prev cell
    | None -> ()

let server_handler t ~from:_ (cell : Cell.t) =
  match Crypto_sim.exposed cell with
  | None -> ()
  | Some cmd -> (
      let now = Engine.Sim.now t.sim in
      (match cmd with
      | Cell.Relay_data { seq; _ } -> (
          match Hashtbl.find_opt t.cell_departures seq with
          | Some dep ->
              Hashtbl.remove t.cell_departures seq;
              Engine.Stats.Online.add t.cell_latency
                (Engine.Time.to_sec_f (Engine.Time.diff now dep))
          | None -> ())
      | Cell.Relay_sendme _ | Cell.Relay_end _ -> ());
      Stream.Sink.deliver t.sink ~now cmd;
      match cmd with
      | Cell.Relay_data { stream_id; _ } ->
          let sb = t.sb_of t.circuit.Circuit.server in
          let back dst_cmd =
            match Circuit.predecessor t.circuit t.circuit.Circuit.server with
            | Some prev ->
                Switchboard.send_cell sb ~dst:prev
                  (Cell.make t.circuit.Circuit.id
                     (Cell.Relay { layers = 0; cmd = dst_cmd }))
            | None -> assert false
          in
          t.circ_since_sendme <- t.circ_since_sendme + 1;
          t.stream_since_sendme <- t.stream_since_sendme + 1;
          if t.circ_since_sendme >= t.config.circuit_increment then begin
            t.circ_since_sendme <- 0;
            back (Cell.Relay_sendme { stream_id = None })
          end;
          if t.stream_since_sendme >= t.config.stream_increment then begin
            t.stream_since_sendme <- 0;
            back (Cell.Relay_sendme { stream_id = Some stream_id })
          end
      | Cell.Relay_sendme _ | Cell.Relay_end _ -> ())

let deploy ~sb_of ~circuit ~bytes ?(config = default_config) ?(stream_id = 0) () =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Sendme.deploy: " ^ msg)
  in
  let client_sb = sb_of circuit.Circuit.client in
  let sim = Netsim.Network.sim (Switchboard.network client_sb) in
  let t =
    {
      config;
      circuit;
      source = Stream.Source.create ~stream_id ~bytes ();
      sink = Stream.Sink.create ~expected_bytes:bytes ();
      sb_of;
      sim;
      circ_credit = config.circuit_window;
      stream_credit = config.stream_window;
      started = false;
      first_sent_at = None;
      sendmes = 0;
      circ_since_sendme = 0;
      stream_since_sendme = 0;
      cell_departures = Hashtbl.create 256;
      cell_latency = Engine.Stats.Online.create ();
    }
  in
  Switchboard.register_circuit client_sb circuit.Circuit.id (client_handler t);
  List.iter
    (fun (r : Relay_info.t) ->
      Switchboard.register_circuit (sb_of r.node) circuit.Circuit.id
        (relay_handler t r.node))
    circuit.Circuit.relays;
  Switchboard.register_circuit (sb_of circuit.Circuit.server) circuit.Circuit.id
    (server_handler t);
  t

let start t =
  if t.started then invalid_arg "Sendme.start: already started";
  t.started <- true;
  pump t

let complete t = Stream.Sink.complete t.sink
let first_sent_at t = t.first_sent_at
let completed_at t = Stream.Sink.completed_at t.sink

let time_to_last_byte t =
  match (t.first_sent_at, completed_at t) with
  | Some a, Some b -> Some (Engine.Time.diff b a)
  | _ -> None

let sink t = t.sink
let cell_latency_stats t = t.cell_latency
let client_credit t = Stdlib.min t.circ_credit t.stream_credit
let sendmes_received t = t.sendmes

let teardown t =
  List.iter
    (fun node -> Switchboard.unregister_circuit (t.sb_of node) t.circuit.Circuit.id)
    (Circuit.nodes t.circuit)

(** Per-node cell dispatch.

    Every overlay participant (client, relay, server) owns one
    switchboard bound to its node's local delivery slot.  Incoming
    cells are dispatched by circuit id to the handler registered for
    that circuit; cells on unknown circuits (e.g. an incoming CREATE)
    go to the control handler; non-cell payloads (e.g. BackTap feedback
    messages) go to the auxiliary handler.  Transports register and
    tear down circuit handlers as circuits come and go.

    A switchboard can be marked {e down} ({!set_down}) to model a
    crashed relay: every arriving packet is black-holed and every send
    refused, without touching the handlers — so a later restart
    ([set_down t false]) resumes dispatch where it left off. *)

type t

type handler = from:Netsim.Node_id.t -> Cell.t -> unit
(** [from] is the overlay neighbour that sent the cell (the packet's
    source node). *)

val install : Netsim.Network.t -> Netsim.Node_id.t -> t
(** Claim the node's local-handler slot.  At most one switchboard per
    node; installing a second one replaces the first's delivery. *)

val node : t -> Netsim.Node_id.t
val network : t -> Netsim.Network.t

val register_circuit : t -> Circuit_id.t -> handler -> unit
(** Raises [Invalid_argument] if the circuit already has a handler
    here. *)

val unregister_circuit : t -> Circuit_id.t -> unit
(** No-op if not registered. *)

val set_control_handler : t -> handler -> unit
(** Receives cells whose circuit has no registered handler. *)

val set_aux_handler : t -> (Netsim.Packet.t -> unit) -> unit
(** Receives non-cell packets addressed to this node. *)

val send_cell : t -> dst:Netsim.Node_id.t -> Cell.t -> unit
(** Wrap a cell in a {!Cell.size}-byte packet and inject it. *)

val send_payload :
  t ->
  ?on_transmit:(int -> unit) ->
  dst:Netsim.Node_id.t ->
  size:int ->
  Netsim.Payload.t ->
  unit
(** Send an arbitrary payload (feedback messages etc.).
    [on_transmit] fires, with the packet's id, when this node's access
    link starts serializing the packet (see {!Netsim.Network.send}). *)

val orphan_cells : t -> int
(** Cells that found neither a circuit nor a control handler. *)

(** {1 Crash injection} *)

val set_down : t -> bool -> unit
(** [set_down t true] models a node crash: incoming packets are
    black-holed (counted) and outgoing sends are silently refused —
    for senders, indistinguishable from loss, which is exactly what a
    crashed relay looks like from one hop away.  [set_down t false]
    restarts the node. *)

val is_down : t -> bool

(** {1 Clean departure}

    A relay that has finished its graceful drain (or left between
    directory epochs) is {e departed}: unlike a crash, incoming circuit
    setup attempts (CREATE/EXTEND) get an immediate typed {!Cell.Gone}
    reply on the same circuit id, so a client racing a stale directory
    snapshot fails fast instead of waiting out a build timeout.  All
    other incoming traffic is black-holed like a crash.  A restart
    ([set_departed t false], driven by {!Relay_ctl.restart}) rejoins
    the network. *)

val set_departed : t -> bool -> unit
val is_departed : t -> bool

val gone_replies : t -> int
(** GONE cells sent in reply to setup attempts while departed. *)

val blackholed_cells : t -> int
(** Packets that arrived while the node was down. *)

val refused_sends : t -> int
(** Sends attempted while the node was down. *)

(** {1 Resource accounting}

    Per-relay budgets over the data-plane bytes held at this node
    (backlog plus in-flight cells, across all circuits routed through
    it) and the number of circuits in the routing table.  The byte
    counters live here so the forwarding hot path can charge and
    credit without knowing about the control plane; enforcement — the
    admission refusals and the OOM responder — lives in
    {!Relay_ctl}, wired through the hooks below. *)

type budget = {
  max_circuits : int option;  (** Routing-entry cap; [None] = unlimited. *)
  max_queued_bytes : int option;  (** Byte-occupancy cap; [None] = unlimited. *)
}

val no_budget : budget
(** Both caps off — the default for every freshly installed node. *)

val within_budget : budget -> circuits:int -> queued_bytes:int -> bool
(** The pure admission predicate: would a relay holding [circuits]
    routing entries and [queued_bytes] bytes of queued cells admit one
    more circuit under [budget]?  ([circuits] strictly below the cap,
    [queued_bytes] at most the cap.)  Shared by {!Relay_ctl} admission
    and by consensus-scale workloads that track occupancy in flat
    counters instead of live switchboards. *)

val set_budget : t -> budget -> unit
val budget : t -> budget

val charge : t -> Circuit_id.t -> int -> unit
(** Account [bytes] against [circuit].  Allocation-free in steady
    state (the per-circuit counter is created on first charge).  When
    the charge lifts the total above [max_queued_bytes], the overflow
    hook fires synchronously (unless {!unsafe_disable_budget}). *)

val credit : t -> Circuit_id.t -> int -> unit
(** Release [bytes] previously charged to [circuit]. *)

val drop_circuit_occupancy : t -> Circuit_id.t -> unit
(** Forget [circuit]'s counter entirely (teardown); its remaining
    bytes leave the total. *)

val queued_bytes : t -> int
(** Total charged bytes across all circuits. *)

val circuit_queued_bytes : t -> Circuit_id.t -> int

val byte_high_watermark : t -> int
(** Highest [queued_bytes] ever observed. *)

val byte_overloaded : t -> bool
(** Whether [queued_bytes] currently exceeds [max_queued_bytes]. *)

val heaviest_circuit : t -> Circuit_id.t option
(** The circuit with the most charged bytes — the OOM responder's
    victim.  Ties break towards the smallest circuit id, so the choice
    does not depend on hash iteration order. *)

val set_on_overflow : t -> (unit -> unit) -> unit
(** [f] fires synchronously whenever a {!charge} leaves the node over
    its byte budget ({!Relay_ctl} installs the OOM responder here). *)

val set_on_byte_overload : t -> (bool -> unit) -> unit
(** [f over] fires on each transition of {!byte_overloaded}. *)

val set_data_kill : t -> (Circuit_id.t -> unit) -> unit
(** Install the data-plane kill switch: [f circuit] must abort this
    node's sender for [circuit], crediting its bytes back.  Installed
    by [Backtap.Node], invoked by {!Relay_ctl}'s OOM responder —
    the indirection keeps the control plane free of a data-plane
    dependency. *)

val kill_data : t -> Circuit_id.t -> unit
(** Invoke the kill switch (no-op if none installed). *)

(**/**)

val unsafe_disable_budget : bool ref
(** Test-only fault injection: while [true], byte accounting continues
    but enforcement (the overflow hook here, admission refusals in
    {!Relay_ctl}) is suppressed, letting occupancy exceed the budget —
    the regression the budget oracle exists to catch.  Never set in
    real runs. *)

(** Per-node cell dispatch.

    Every overlay participant (client, relay, server) owns one
    switchboard bound to its node's local delivery slot.  Incoming
    cells are dispatched by circuit id to the handler registered for
    that circuit; cells on unknown circuits (e.g. an incoming CREATE)
    go to the control handler; non-cell payloads (e.g. BackTap feedback
    messages) go to the auxiliary handler.  Transports register and
    tear down circuit handlers as circuits come and go.

    A switchboard can be marked {e down} ({!set_down}) to model a
    crashed relay: every arriving packet is black-holed and every send
    refused, without touching the handlers — so a later restart
    ([set_down t false]) resumes dispatch where it left off. *)

type t

type handler = from:Netsim.Node_id.t -> Cell.t -> unit
(** [from] is the overlay neighbour that sent the cell (the packet's
    source node). *)

val install : Netsim.Network.t -> Netsim.Node_id.t -> t
(** Claim the node's local-handler slot.  At most one switchboard per
    node; installing a second one replaces the first's delivery. *)

val node : t -> Netsim.Node_id.t
val network : t -> Netsim.Network.t

val register_circuit : t -> Circuit_id.t -> handler -> unit
(** Raises [Invalid_argument] if the circuit already has a handler
    here. *)

val unregister_circuit : t -> Circuit_id.t -> unit
(** No-op if not registered. *)

val set_control_handler : t -> handler -> unit
(** Receives cells whose circuit has no registered handler. *)

val set_aux_handler : t -> (Netsim.Packet.t -> unit) -> unit
(** Receives non-cell packets addressed to this node. *)

val send_cell : t -> dst:Netsim.Node_id.t -> Cell.t -> unit
(** Wrap a cell in a {!Cell.size}-byte packet and inject it. *)

val send_payload :
  t ->
  ?on_transmit:(int -> unit) ->
  dst:Netsim.Node_id.t ->
  size:int ->
  Netsim.Payload.t ->
  unit
(** Send an arbitrary payload (feedback messages etc.).
    [on_transmit] fires, with the packet's id, when this node's access
    link starts serializing the packet (see {!Netsim.Network.send}). *)

val orphan_cells : t -> int
(** Cells that found neither a circuit nor a control handler. *)

(** {1 Crash injection} *)

val set_down : t -> bool -> unit
(** [set_down t true] models a node crash: incoming packets are
    black-holed (counted) and outgoing sends are silently refused —
    for senders, indistinguishable from loss, which is exactly what a
    crashed relay looks like from one hop away.  [set_down t false]
    restarts the node. *)

val is_down : t -> bool

val blackholed_cells : t -> int
(** Packets that arrived while the node was down. *)

val refused_sends : t -> int
(** Sends attempted while the node was down. *)

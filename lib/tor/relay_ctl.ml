type entry = { prev : Netsim.Node_id.t; next : Netsim.Node_id.t option }

type probe_event = Refused_build of Circuit_id.t | Oom_killed of Circuit_id.t

type t = {
  sb : Switchboard.t;
  table : (int, entry) Hashtbl.t;
  mutable destroyed : int;
  mutable crashes : int;
  mutable admitted : int;
  mutable refusals : int;
  mutable oom_kills : int;
  mutable overload_enters : int;
  mutable overloaded : bool;  (* byte-overloaded or circuit table full *)
  mutable draining : bool;
  mutable drain_refusals : int;
  mutable drain_kills : int;
  mutable trace : (Engine.Trace.t * string) option;
  mutable probe : (probe_event -> unit) option;
}

let key = Circuit_id.to_int

let record t kind detail =
  match t.trace with
  | Some (registry, subject) ->
      Engine.Trace.record_event registry kind ~subject ~detail
        (Engine.Sim.now (Netsim.Network.sim (Switchboard.network t.sb)))
  | None -> ()

let notify t ev = match t.probe with Some f -> f ev | None -> ()

let table_full t =
  match (Switchboard.budget t.sb).Switchboard.max_circuits with
  | Some cap -> Hashtbl.length t.table >= cap
  | None -> false

(* Re-evaluate the combined overload state (byte occupancy over budget,
   or routing table at capacity) and trace the transition.  Called on
   every table change and on byte-overload flips. *)
let refresh_overload t =
  let over = Switchboard.byte_overloaded t.sb || table_full t in
  if over <> t.overloaded then begin
    t.overloaded <- over;
    if over then begin
      t.overload_enters <- t.overload_enters + 1;
      record t Engine.Trace.Overload_enter
        (Printf.sprintf "circuits=%d queued_bytes=%d"
           (Hashtbl.length t.table)
           (Switchboard.queued_bytes t.sb))
    end
    else record t Engine.Trace.Overload_exit ""
  end

(* Admission control for an incoming CREATE: refuse when the routing
   table or the byte occupancy is at capacity.  A re-CREATE of a
   circuit we already route is always admitted (idempotent).  With the
   budget hook disabled (harness fault injection) everything is
   admitted, re-creating the unprotected relay the oracles watch. *)
let admits t c =
  Hashtbl.mem t.table (key c)
  || !Switchboard.unsafe_disable_budget
  || Switchboard.within_budget (Switchboard.budget t.sb)
       ~circuits:(Hashtbl.length t.table)
       ~queued_bytes:(Switchboard.queued_bytes t.sb)

(* Tor's [circuits_handle_oom] analog: kill heaviest circuits until the
   node is back under its byte budget.  Each kill aborts the local
   data-plane sender (synchronously crediting its bytes back), removes
   the routing entry and tells both neighbours with DESTROY — the
   victim's client rebuilds elsewhere. *)
let handle_overflow t =
  let progress = ref true in
  while
    Switchboard.byte_overloaded t.sb
    && (not !Switchboard.unsafe_disable_budget)
    && !progress
  do
    match Switchboard.heaviest_circuit t.sb with
    | None -> progress := false
    | Some c ->
        t.oom_kills <- t.oom_kills + 1;
        record t Engine.Trace.Oom_kill
          (Printf.sprintf "circuit=%d bytes=%d" (key c)
             (Switchboard.circuit_queued_bytes t.sb c));
        notify t (Oom_killed c);
        Switchboard.kill_data t.sb c;
        (match Hashtbl.find_opt t.table (key c) with
        | Some { prev; next } ->
            Hashtbl.remove t.table (key c);
            List.iter
              (fun dst ->
                Switchboard.send_cell t.sb ~dst (Cell.make c Cell.Destroy))
              (prev :: Option.to_list next)
        | None -> ());
        Switchboard.drop_circuit_occupancy t.sb c;
        refresh_overload t
  done

let handle t ~from (cell : Cell.t) =
  let c = cell.circuit in
  match cell.command with
  | Cell.Create ->
      if t.draining && not (Hashtbl.mem t.table (key c)) then begin
        (* Draining: no new circuits, but existing ones keep forwarding
           until the drain deadline.  Same REFUSED path as admission
           control, distinct reason so clients can tell them apart. *)
        t.drain_refusals <- t.drain_refusals + 1;
        record t Engine.Trace.Refused
          (Printf.sprintf "circuit=%d draining" (key c));
        notify t (Refused_build c);
        Switchboard.send_cell t.sb ~dst:from
          (Cell.make c (Cell.Refused { reason = Cell.Draining }))
      end
      else if admits t c then begin
        t.admitted <- t.admitted + 1;
        Hashtbl.replace t.table (key c) { prev = from; next = None };
        refresh_overload t;
        Switchboard.send_cell t.sb ~dst:from (Cell.make c Cell.Created)
      end
      else begin
        t.refusals <- t.refusals + 1;
        record t Engine.Trace.Refused
          (Printf.sprintf "circuit=%d circuits=%d queued_bytes=%d" (key c)
             (Hashtbl.length t.table)
             (Switchboard.queued_bytes t.sb));
        notify t (Refused_build c);
        Switchboard.send_cell t.sb ~dst:from
          (Cell.make c (Cell.Refused { reason = Cell.Busy }))
      end
  | Cell.Extend { next } -> (
      match Hashtbl.find_opt t.table (key c) with
      | None -> () (* EXTEND for an unknown circuit: drop. *)
      | Some entry -> (
          match entry.next with
          | Some succ ->
              (* Not the end of the circuit: pass the request along. *)
              Switchboard.send_cell t.sb ~dst:succ cell
          | None ->
              Hashtbl.replace t.table (key c) { entry with next = Some next };
              Switchboard.send_cell t.sb ~dst:next (Cell.make c Cell.Create)))
  | Cell.Created -> (
      match Hashtbl.find_opt t.table (key c) with
      | Some { prev; next = Some succ } when Netsim.Node_id.equal succ from ->
          Switchboard.send_cell t.sb ~dst:prev (Cell.make c Cell.Extended)
      | Some _ | None -> ())
  | Cell.Extended -> (
      match Hashtbl.find_opt t.table (key c) with
      | Some { prev; next = Some succ } when Netsim.Node_id.equal succ from ->
          Switchboard.send_cell t.sb ~dst:prev cell
      | Some _ | None -> ())
  | Cell.Refused _ | Cell.Gone -> (
      (* Our extension target refused the circuit (or has departed the
         network): it never became part of it, so roll the routing
         entry back to end-of-circuit and pass the answer towards the
         client. *)
      match Hashtbl.find_opt t.table (key c) with
      | Some ({ prev; next = Some succ } as entry)
        when Netsim.Node_id.equal succ from ->
          Hashtbl.replace t.table (key c) { entry with next = None };
          Switchboard.send_cell t.sb ~dst:prev cell
      | Some _ | None -> ())
  | Cell.Destroy -> (
      t.destroyed <- t.destroyed + 1;
      match Hashtbl.find_opt t.table (key c) with
      | None -> ()
      | Some { prev; next } ->
          Hashtbl.remove t.table (key c);
          (* Occupancy is owned by the data plane: its sender credits
             every charged byte when it aborts, so dropping the counter
             here would double-subtract.  Only the table shrinks. *)
          refresh_overload t;
          (* Propagate away from whoever told us. *)
          let targets =
            List.filter
              (fun n -> not (Netsim.Node_id.equal n from))
              (prev :: Option.to_list next)
          in
          List.iter
            (fun dst -> Switchboard.send_cell t.sb ~dst (Cell.make c Cell.Destroy))
            targets)
  | Cell.Relay _ -> () (* Data plane handles RELAY cells; ignore here. *)

let create sb =
  let t =
    { sb; table = Hashtbl.create 16; destroyed = 0; crashes = 0; admitted = 0;
      refusals = 0; oom_kills = 0; overload_enters = 0; overloaded = false;
      draining = false; drain_refusals = 0; drain_kills = 0;
      trace = None; probe = None }
  in
  Switchboard.set_control_handler sb (fun ~from cell -> handle t ~from cell);
  (* Enforcement hooks are installed unconditionally; they are inert
     until a budget is set on the switchboard. *)
  Switchboard.set_on_overflow sb (fun () -> handle_overflow t);
  Switchboard.set_on_byte_overload sb (fun _ -> refresh_overload t);
  t

let set_budget t budget = Switchboard.set_budget t.sb budget
let set_trace t trace = t.trace <- Some trace
let set_probe t f = t.probe <- f
let switchboard t = t.sb

(* A crash loses all volatile state: the routing table is gone, and
   the node stops dispatching.  No DESTROYs are sent — a dead relay
   cannot say goodbye; its neighbours find out by timing out. *)
let crash t =
  t.crashes <- t.crashes + 1;
  t.draining <- false;
  Hashtbl.reset t.table;
  Switchboard.set_down t.sb true

let restart t =
  t.draining <- false;
  Switchboard.set_departed t.sb false;
  Switchboard.set_down t.sb false

(* --- graceful drain ------------------------------------------------ *)

let begin_drain t =
  if not t.draining then begin
    t.draining <- true;
    record t Engine.Trace.Drain_begin
      (Printf.sprintf "circuits=%d" (Hashtbl.length t.table))
  end

let draining t = t.draining

(* The drain deadline: surviving circuits are destroyed towards both
   neighbours (unlike a crash, a departing relay says goodbye), the
   local data-plane senders are aborted, and the node flips to the
   departed state where setup attempts bounce back as GONE.  Iterating
   a sorted snapshot keeps the DESTROY order independent of hash
   internals, so runs stay byte-identical across [--jobs]. *)
let finish_drain t =
  let victims =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare
  in
  List.iter
    (fun k ->
      let c = Circuit_id.of_int k in
      match Hashtbl.find_opt t.table k with
      | None -> ()
      | Some { prev; next } ->
          t.drain_kills <- t.drain_kills + 1;
          Switchboard.kill_data t.sb c;
          Hashtbl.remove t.table k;
          List.iter
            (fun dst ->
              Switchboard.send_cell t.sb ~dst (Cell.make c Cell.Destroy))
            (prev :: Option.to_list next);
          Switchboard.drop_circuit_occupancy t.sb c)
    victims;
  refresh_overload t;
  record t Engine.Trace.Drain_end
    (Printf.sprintf "killed=%d" (List.length victims));
  t.draining <- false;
  Switchboard.set_departed t.sb true

let route t c = Hashtbl.find_opt t.table (key c)

let circuits t =
  Hashtbl.fold (fun k _ acc -> Circuit_id.of_int k :: acc) t.table []
  |> List.sort Circuit_id.compare

let destroyed t = t.destroyed
let crashes t = t.crashes
let admitted t = t.admitted
let refusals t = t.refusals
let oom_kills t = t.oom_kills
let overload_enters t = t.overload_enters
let overloaded t = t.overloaded
let drain_refusals t = t.drain_refusals
let drain_kills t = t.drain_kills

type entry = { prev : Netsim.Node_id.t; next : Netsim.Node_id.t option }

type t = {
  sb : Switchboard.t;
  table : (int, entry) Hashtbl.t;
  mutable destroyed : int;
  mutable crashes : int;
}

let key = Circuit_id.to_int

let handle t ~from (cell : Cell.t) =
  let c = cell.circuit in
  match cell.command with
  | Cell.Create ->
      Hashtbl.replace t.table (key c) { prev = from; next = None };
      Switchboard.send_cell t.sb ~dst:from (Cell.make c Cell.Created)
  | Cell.Extend { next } -> (
      match Hashtbl.find_opt t.table (key c) with
      | None -> () (* EXTEND for an unknown circuit: drop. *)
      | Some entry -> (
          match entry.next with
          | Some succ ->
              (* Not the end of the circuit: pass the request along. *)
              Switchboard.send_cell t.sb ~dst:succ cell
          | None ->
              Hashtbl.replace t.table (key c) { entry with next = Some next };
              Switchboard.send_cell t.sb ~dst:next (Cell.make c Cell.Create)))
  | Cell.Created -> (
      match Hashtbl.find_opt t.table (key c) with
      | Some { prev; next = Some succ } when Netsim.Node_id.equal succ from ->
          Switchboard.send_cell t.sb ~dst:prev (Cell.make c Cell.Extended)
      | Some _ | None -> ())
  | Cell.Extended -> (
      match Hashtbl.find_opt t.table (key c) with
      | Some { prev; next = Some succ } when Netsim.Node_id.equal succ from ->
          Switchboard.send_cell t.sb ~dst:prev cell
      | Some _ | None -> ())
  | Cell.Destroy -> (
      t.destroyed <- t.destroyed + 1;
      match Hashtbl.find_opt t.table (key c) with
      | None -> ()
      | Some { prev; next } ->
          Hashtbl.remove t.table (key c);
          (* Propagate away from whoever told us. *)
          let targets =
            List.filter
              (fun n -> not (Netsim.Node_id.equal n from))
              (prev :: Option.to_list next)
          in
          List.iter
            (fun dst -> Switchboard.send_cell t.sb ~dst (Cell.make c Cell.Destroy))
            targets)
  | Cell.Relay _ -> () (* Data plane handles RELAY cells; ignore here. *)

let create sb =
  let t = { sb; table = Hashtbl.create 16; destroyed = 0; crashes = 0 } in
  Switchboard.set_control_handler sb (fun ~from cell -> handle t ~from cell);
  t

(* A crash loses all volatile state: the routing table is gone, and
   the node stops dispatching.  No DESTROYs are sent — a dead relay
   cannot say goodbye; its neighbours find out by timing out. *)
let crash t =
  t.crashes <- t.crashes + 1;
  Hashtbl.reset t.table;
  Switchboard.set_down t.sb true

let restart t = Switchboard.set_down t.sb false

let route t c = Hashtbl.find_opt t.table (key c)

let circuits t =
  Hashtbl.fold (fun k _ acc -> Circuit_id.of_int k :: acc) t.table []
  |> List.sort Circuit_id.compare

let destroyed t = t.destroyed
let crashes t = t.crashes

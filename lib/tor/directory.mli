(** The directory: the set of known relays and path selection.

    Path selection follows Tor's essentials: positions are filled
    guard → exit → middle, each choice is weighted by relay bandwidth
    (faster relays carry proportionally more circuits), a relay appears
    at most once per path, and position flags are honoured.  This is
    what makes the random star networks of the CDF experiment exhibit
    realistic bottleneck diversity. *)

type t

type selection =
  | Bandwidth_weighted
      (** Each position is drawn with probability proportional to relay
          bandwidth — Tor's load-balancing default. *)
  | Uniform  (** Each position is drawn uniformly from the candidates. *)

val selection_to_string : selection -> string
(** ["bandwidth"] or ["uniform"]. *)

val selection_of_string : string -> selection option
(** Accepts ["bandwidth"]/["bw"]/["weighted"] and
    ["uniform"]/["random"]; [None] otherwise. *)

val create : unit -> t
val add : t -> Relay_info.t -> unit
val relays : t -> Relay_info.t list
(** In insertion order. *)

val count : t -> int

val find_by_node : t -> Netsim.Node_id.t -> Relay_info.t option

val select_path :
  t ->
  Engine.Rng.t ->
  ?selection:selection ->
  ?exclude:Netsim.Node_id.t list ->
  hops:int ->
  unit ->
  Relay_info.t list option
(** [select_path dir rng ~hops] draws a path of [hops] distinct relays:
    position 0 needs [Guard], the last position needs [Exit], middles
    need no flag.  [selection] (default [Bandwidth_weighted]) picks the
    drawing policy; relays whose node appears in [exclude] (default
    none) are never chosen — sessions use this to route around
    suspected-dead relays.  [None] if the directory cannot satisfy the
    constraints.  Raises [Invalid_argument] if [hops < 1]. *)

(** The directory: the set of known relays, epoch snapshots and path
    selection.

    Path selection follows Tor's essentials: positions are filled
    guard → exit → middle, each choice is weighted by relay bandwidth
    (faster relays carry proportionally more circuits), a relay appears
    at most once per path, and position flags are honoured.  This is
    what makes the random star networks of the CDF experiment exhibit
    realistic bottleneck diversity.

    {2 The epoch/staleness model}

    Real Tor clients never see the live relay population; they see a
    consensus document refreshed on a period.  This directory models
    that with {e epoch snapshots}: churn ({!join}, {!mark_draining},
    {!mark_down}, {!mark_up}) mutates the live population immediately,
    but {!select_path} draws from the snapshot taken at the last
    {!advance_epoch} — deliberately ignoring live status.  A client can
    therefore draw a relay that departed after the boundary and race
    its departure; the build then fails with a typed
    {!Circuit_builder.Gone} (cleanly departed relay) or a timeout
    (crash), and {!Session} absorbs it with its backoff/redraw
    machinery.  That staleness window, [0, epoch period), is the model
    — not a bug.

    Draining relays stay {e in} snapshots (they are still listed in the
    consensus while they drain), so clients also exercise the
    [Refused (Draining)] path.  Relays marked [Down] at the boundary
    drop out of the next snapshot.

    Until the first [advance_epoch] the live view doubles as the
    snapshot, so churn-free users of this module see the historical
    behaviour unchanged.

    Each relay also carries an {e incarnation} counter, bumped every
    time it returns from [Down] ({!mark_up}).  Clients that excluded a
    relay for being gone or crashed compare the stored incarnation
    against the current one to learn that the relay restarted and is
    worth trying again — "crashed relays stay excluded {e until
    restart}" falls out of this counter. *)

type t

type selection =
  | Bandwidth_weighted
      (** Each position is drawn with probability proportional to relay
          bandwidth — Tor's load-balancing default. *)
  | Uniform  (** Each position is drawn uniformly from the candidates. *)

val selection_to_string : selection -> string
(** ["bandwidth"] or ["uniform"]. *)

val selection_of_string : string -> selection option
(** Accepts ["bandwidth"]/["bw"]/["weighted"] and
    ["uniform"]/["random"]; [None] otherwise. *)

val create : unit -> t

val add : t -> Relay_info.t -> unit
(** Bootstrap: the relay enters the live population {e and} the
    standing snapshot, so it is selectable immediately.  Status [Up],
    incarnation 0. *)

val relays : t -> Relay_info.t list
(** The live population, insertion order. *)

val count : t -> int
(** Live population size. *)

val find_by_node : t -> Netsim.Node_id.t -> Relay_info.t option

(** {1 Epochs and churn} *)

type status = Up | Draining | Down

val status_to_string : status -> string

val join : t -> Relay_info.t -> unit
(** A mid-run join: the relay enters the live population now but
    becomes selectable only at the next {!advance_epoch} — new relays
    must wait for a consensus that lists them. *)

val mark_draining : t -> Netsim.Node_id.t -> unit
(** The relay announced a clean departure.  It stays in snapshots
    until it is marked [Down]. *)

val mark_down : t -> Netsim.Node_id.t -> unit
(** The relay is gone (drain completed, or crashed).  It drops out of
    the {e next} snapshot; the current one still lists it. *)

val mark_up : t -> Netsim.Node_id.t -> unit
(** The relay is up.  Coming from [Down] bumps its incarnation —
    clients use the bump to forgive exclusions (see the model notes
    above).  Selectable again at the next epoch boundary. *)

val status : t -> Netsim.Node_id.t -> status
(** Live status; unknown nodes read as [Down]. *)

val incarnation : t -> Netsim.Node_id.t -> int
(** Times this relay returned from [Down]; 0 for a relay that never
    died (and for unknown nodes). *)

val advance_epoch : t -> unit
(** Take a new snapshot: every live relay whose status is not [Down]
    (so [Up] and [Draining]) becomes the population clients select
    from, and {!epoch} increments. *)

val epoch : t -> int
(** Boundaries crossed so far; 0 before the first {!advance_epoch}. *)

val snapshot_relays : t -> Relay_info.t list
(** What clients currently select from: the last snapshot, or the live
    population if no epoch has ever been taken. *)

val select_path :
  t ->
  Engine.Rng.t ->
  ?selection:selection ->
  ?exclude:Netsim.Node_id.t list ->
  hops:int ->
  unit ->
  Relay_info.t list option
(** [select_path dir rng ~hops] draws a path of [hops] distinct relays
    from {!snapshot_relays} (the last epoch snapshot — live status is
    deliberately not consulted, see the staleness model above):
    position 0 needs [Guard], the last position needs [Exit], middles
    need no flag.  [selection] (default [Bandwidth_weighted]) picks the
    drawing policy; relays whose node appears in [exclude] (default
    none) are never chosen — sessions use this to route around
    suspected-dead relays.  [None] if the directory cannot satisfy the
    constraints.  Raises [Invalid_argument] if [hops < 1]. *)

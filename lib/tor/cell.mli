(** Tor cells.

    All circuit traffic is packaged into fixed-size 512-byte cells
    (Tor's classic wire format).  Control cells (CREATE/EXTEND/...)
    manage circuits; RELAY cells carry end-to-end payload wrapped in
    onion layers — modelled structurally by a layer counter, see
    {!Crypto_sim}.

    Cells travel inside {!Netsim.Payload.t} packets via the {!Wire}
    constructor. *)

val size : int
(** Wire size of every cell: 512 bytes. *)

val payload_capacity : int
(** Application bytes a RELAY_DATA cell can carry: 498 (512 minus the
    relay header, as in Tor). *)

type relay_command =
  | Relay_data of { stream_id : int; seq : int; length : int; last : bool }
      (** [length] application bytes of stream [stream_id]; [seq]
          numbers data cells per circuit from 0; [last] marks the final
          cell of the stream. *)
  | Relay_sendme of { stream_id : int option }
      (** Legacy flow-control credit; [None] = circuit-level. *)
  | Relay_end of { stream_id : int }

type refusal_reason =
  | Busy  (** The relay is over its circuit or byte budget. *)
  | Draining
      (** The relay is gracefully departing: it refuses new circuits
          but keeps forwarding for existing ones until its drain
          deadline.  Like [Busy], a transient "try elsewhere". *)

val refusal_reason_to_string : refusal_reason -> string

type command =
  | Create
  | Created
  | Extend of { next : Netsim.Node_id.t }
      (** Ask the receiving relay to extend the circuit to [next]. *)
  | Extended
  | Refused of { reason : refusal_reason }
      (** Typed admission-control refusal of a CREATE: travels back
          along the built prefix to the client instead of CREATED.
          Distinct from {!Destroy} — refusal means "try elsewhere",
          not "this circuit is dead". *)
  | Gone
      (** The addressed relay has cleanly left the network (its drain
          completed or it departed between directory epochs).  Travels
          back along the built prefix like {!Refused}, but names a
          *permanent* condition for this consensus: the client should
          exclude the relay until it is observed to restart. *)
  | Destroy
  | Relay of { layers : int; cmd : relay_command }
      (** [layers] onion layers still wrapped around [cmd]. *)

type t = { circuit : Circuit_id.t; command : command }

type Netsim.Payload.t += Wire of t
(** Cells as packet payloads. *)

val make : Circuit_id.t -> command -> t

val data :
  Circuit_id.t -> layers:int -> stream_id:int -> seq:int -> length:int ->
  last:bool -> t
(** Convenience constructor for RELAY_DATA.  Raises [Invalid_argument]
    if [length] is not in [\[1, payload_capacity\]] or [seq < 0] or
    [layers < 0]. *)

val is_relay : t -> bool

val relay_cmd : t -> relay_command option
(** The relay command if this is a RELAY cell. *)

val pp : Format.formatter -> t -> unit

val register_printer : unit -> unit
(** Hook cell printing into {!Netsim.Payload.pp} (idempotent). *)

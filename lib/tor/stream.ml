module Source = struct
  type t = {
    stream_id : int;
    total : int;
    mutable sent : int;
    mutable next_seq : int;
  }

  let create ?(start_byte = 0) ~stream_id ~bytes () =
    if bytes <= 0 then invalid_arg "Stream.Source.create: bytes must be positive";
    if start_byte < 0 || start_byte >= bytes then
      invalid_arg "Stream.Source.create: start_byte out of range";
    if start_byte mod Cell.payload_capacity <> 0 then
      invalid_arg "Stream.Source.create: start_byte must be cell-aligned";
    { stream_id; total = bytes; sent = start_byte;
      next_seq = start_byte / Cell.payload_capacity }

  let stream_id t = t.stream_id
  let total_bytes t = t.total
  let remaining t = t.total - t.sent

  let cell_count t =
    (t.total + Cell.payload_capacity - 1) / Cell.payload_capacity

  let next_cell t circuit ~layers =
    let rem = remaining t in
    if rem = 0 then None
    else begin
      let length = Stdlib.min rem Cell.payload_capacity in
      let last = length = rem in
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      t.sent <- t.sent + length;
      Some
        (Cell.data circuit ~layers ~stream_id:t.stream_id ~seq ~length ~last)
    end
end

module Sink = struct
  type t = {
    expected : int;
    seen : (int, int) Hashtbl.t;  (* seq -> payload length *)
    mutable received : int;
    mutable cells : int;
    mutable duplicates : int;
    (* The contiguous delivered prefix: every cell up to (excluding)
       [next_contig] has arrived, accounting for [contig_bytes] bytes.
       This is what a resumed transfer can safely skip. *)
    mutable next_contig : int;
    mutable contig_bytes : int;
    mutable completed_at : Engine.Time.t option;
  }

  let create ?(start_byte = 0) ~expected_bytes () =
    if expected_bytes <= 0 then
      invalid_arg "Stream.Sink.create: expected_bytes must be positive";
    if start_byte < 0 || start_byte >= expected_bytes then
      invalid_arg "Stream.Sink.create: start_byte out of range";
    if start_byte mod Cell.payload_capacity <> 0 then
      invalid_arg "Stream.Sink.create: start_byte must be cell-aligned";
    { expected = expected_bytes; seen = Hashtbl.create 64; received = start_byte;
      cells = 0; duplicates = 0; next_contig = start_byte / Cell.payload_capacity;
      contig_bytes = start_byte; completed_at = None }

  let advance_contig t =
    let rec go () =
      match Hashtbl.find_opt t.seen t.next_contig with
      | Some length ->
          t.contig_bytes <- t.contig_bytes + length;
          t.next_contig <- t.next_contig + 1;
          go ()
      | None -> ()
    in
    go ()

  let deliver t ~now = function
    | Cell.Relay_data { seq; length; _ } ->
        if Hashtbl.mem t.seen seq then t.duplicates <- t.duplicates + 1
        else begin
          Hashtbl.add t.seen seq length;
          t.received <- t.received + length;
          t.cells <- t.cells + 1;
          if seq = t.next_contig then advance_contig t;
          if t.received >= t.expected && t.completed_at = None then
            t.completed_at <- Some now
        end
    | Cell.Relay_sendme _ | Cell.Relay_end _ -> ()

  let received_bytes t = t.received
  let cells_received t = t.cells
  let duplicates t = t.duplicates
  let delivered_bytes t = t.contig_bytes
  let complete t = t.received >= t.expected
  let completed_at t = t.completed_at
end

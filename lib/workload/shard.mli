(** Deterministic partitions for sharded consensus-scale runs.

    Pure functions of [(seed, population, shards)]: the sharded
    {!Network_experiment} engine derives every ownership decision —
    which shard runs a circuit slot, which shard applies a relay's
    occupancy deltas during the exchange phase — from these, so the
    partition is identical on every machine and across every
    [--jobs]/[--shards] setting. *)

val count : slots:int -> shards:int -> int
(** Effective shard count: [shards] clamped to [slots] so no shard is
    empty.  Raises [Invalid_argument] unless both are positive. *)

val slot_range : slots:int -> shards:int -> int -> int * int
(** [slot_range ~slots ~shards k] is shard [k]'s contiguous slot range
    [(lo, hi)] (half-open).  The ranges of shards [0 .. count - 1]
    tile [0, slots) exactly, in order, balanced to within one slot.
    Raises [Invalid_argument] if [k] is outside [0, count). *)

val owner_of_slot : slots:int -> shards:int -> int -> int
(** The shard whose {!slot_range} contains slot [i] — the O(1) inverse
    of {!slot_range}.  Raises [Invalid_argument] if [i] is outside
    [0, slots). *)

val relay_shard : seed:int -> shards:int -> int -> int
(** [relay_shard ~seed ~shards r] is the shard that owns relay [r]'s
    occupancy counters during the exchange phase: a seeded SplitMix64
    hash reduced mod [shards].  Every relay lands in exactly one shard
    and the assignment is stable for a given seed.  Raises
    [Invalid_argument] if [shards < 1] or [r < 0]. *)

(** Paired recovery runs: a crash mid-transfer, a {!Tor_model.Session}
    routing around it.

    Where {!Fault_experiment} measures how a {e single} circuit dies,
    this experiment measures how a session {e survives}: a star of
    [relay_count] relays (bandwidths cycling over four tiers so the
    two {!Tor_model.Directory.selection} policies differ), one logical
    transfer driven by a {!Tor_model.Session}, and optionally one relay
    crash at a fixed offset from transfer start.  The session excludes
    the suspect, draws an alternate path, rebuilds, and resumes from
    the last contiguously delivered byte; the result records completion
    time, recovery latency, retry counts and the goodput achieved.

    The crash victim is whatever relay the session drew at path
    position [crash_position] of its {e first} circuit, so the crash
    schedule is a function of the seed alone — {!compare_strategies}
    runs both startup strategies against the byte-identical schedule. *)

type config = {
  relay_count : int;
      (** Must exceed [hops]: recovery needs spare relays. *)
  hops : int;
  relay_base_rate : Engine.Units.Rate.t;
      (** Tier 0 bandwidth; relay [i] gets [base * (1 + i mod 4)]. *)
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
  crash_at : Engine.Time.t option;
      (** Crash offset from first transfer start; [None] = no crash. *)
  crash_position : int;
      (** Path position of the victim, 1-based (1 = guard). *)
  selection : Tor_model.Directory.selection;
  max_rebuilds : int;
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;  (** Per-cell retransmission budget. *)
  horizon : Engine.Time.t;
}

val default_config : config
(** 512 KiB over 3 of 8 relays, bandwidth-weighted selection, budget of
    3 rebuilds, no crash; failure detection tight enough ([rto_min]
    300 ms, [max_retries] 4) that a crash is detected in seconds. *)

val validate_config : config -> (config, string) result

type outcome =
  | Completed  (** Every byte delivered, possibly across rebuilds. *)
  | Exhausted of Tor_model.Session.reason
      (** The session gave up; terminal in bounded simulated time. *)
  | Timed_out  (** Still running at [horizon] — a liveness bug. *)

val outcome_to_string : outcome -> string
(** ["completed"], ["exhausted:<reason>"] or ["timed-out"]. *)

type result = {
  outcome : outcome;
  time_to_last_byte : Engine.Time.t option;
      (** First transfer start to session completion, spanning every
          rebuild and backoff ([Completed] only). *)
  rebuilds : int;
  generations : int;  (** Circuits actually deployed. *)
  recovery_times : Engine.Time.t list;
      (** Per successful rebuild, oldest first: failure to resumed
          start. *)
  time_to_recover : Engine.Time.t option;
      (** First entry of [recovery_times]. *)
  delivered_bytes : int;
      (** Contiguous prefix at the sink, across generations. *)
  duplicates : int;
      (** Cells delivered twice, summed over generations — resume must
          keep this at 0. *)
  retransmissions : int;  (** Summed over generations. *)
  drops : Netsim.Link.drop_counts;  (** Summed over every link. *)
  queue_high_watermark_bytes : int;
      (** Deepest any single link queue ever got, in bytes. *)
  goodput_bps : float;
      (** Delivered bits per second of session time (start to terminal
          instant), i.e. including recovery dead time. *)
  excluded : Netsim.Node_id.t list;
      (** Relays the session ended up excluding. *)
  events : Engine.Trace.event list;
      (** Fault / rebuild / resume / exhausted log, oldest first. *)
  wall_events : int;  (** Simulator events executed (cost metric). *)
}

val run :
  ?seed:int ->
  ?probe:(Engine.Sim.t -> Netsim.Link.t list -> Backtap.Transfer.t -> unit) ->
  config ->
  result
(** Deterministic per [(seed, config)]: identical seeds yield
    byte-identical results.  Raises [Invalid_argument] if the config
    does not validate.  Each run owns its simulator and RNG, so
    independent replicates are domain-safe.

    [probe] is called once per circuit generation — after that
    generation's transfer is deployed, before it starts — with the
    simulator, every link and the new transfer, so invariant oracles
    can re-attach across rebuilds.  Probes must be passive (observe
    only). *)

val run_many : ?jobs:int -> (int * config) list -> result list
(** One {!run} per [(seed, config)] replicate on a domain pool of
    [jobs] workers ({!Engine.Pool.default_jobs} when omitted).
    Results are in task order and byte-identical to mapping {!run}
    sequentially. *)

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

val compare_strategies : ?jobs:int -> ?seed:int -> config -> comparison
(** Run the config three times with the same seed (default 42) — once
    per startup strategy — so all face the identical crash schedule.
    The config's own [strategy] field is ignored. *)

val pp_result : Format.formatter -> result -> unit

type config = {
  relay_count : int;
  bottleneck_distance : int;
  bottleneck_rate : Engine.Units.Rate.t;
  fast_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
  loss : Netsim.Faults.loss_model option;
  outage : (Engine.Time.t * Engine.Time.t) option;
  crash_at : Engine.Time.t option;
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;
  horizon : Engine.Time.t;
}

let default_config =
  {
    relay_count = 3;
    bottleneck_distance = 2;
    bottleneck_rate = Engine.Units.Rate.mbit 3;
    fast_rate = Engine.Units.Rate.mbit 50;
    access_delay = Engine.Time.ms 10;
    endpoint_rate = Engine.Units.Rate.mbit 100;
    transfer_bytes = Engine.Units.kib 512;
    strategy = Circuitstart.Controller.Circuit_start;
    params = Circuitstart.Params.default;
    link_queue = Netsim.Nqueue.unbounded;
    loss = None;
    outage = None;
    crash_at = None;
    rto_min = Engine.Time.ms 300;
    rto_initial = Engine.Time.ms 500;
    max_retries = 4;
    horizon = Engine.Time.s 60;
  }

let validate_config c =
  if c.relay_count < 1 then Error "relay_count must be positive"
  else if c.bottleneck_distance < 1 || c.bottleneck_distance > c.relay_count then
    Error "bottleneck_distance must be in [1, relay_count]"
  else if c.transfer_bytes <= 0 then Error "transfer_bytes must be positive"
  else if c.max_retries < 1 then Error "max_retries must be positive"
  else if Engine.Time.(c.horizon <= Engine.Time.zero) then Error "horizon must be positive"
  else
    match
      ( Option.map Netsim.Faults.validate_loss c.loss,
        c.outage,
        Circuitstart.Params.validate c.params )
    with
    | Some (Error msg), _, _ -> Error msg
    | _, Some (down, up), _ when Engine.Time.(up <= down) ->
        Error "outage window must have up_at > down_at"
    | _, _, Error msg -> Error msg
    | _, _, Ok _ -> Ok c

type outcome = Completed | Failed_circuit | Timed_out

type result = {
  outcome : outcome;
  time_to_last_byte : Engine.Time.t option;
  failed_after : Engine.Time.t option;
  failed_hop : int option;
  goodput_bps : float;
  received_bytes : int;
  retransmissions : int;
  drops : Netsim.Link.drop_counts;
  queue_high_watermark_bytes : int;
  blackholed_cells : int;
  circuit_established_in : Engine.Time.t;
  transfer_started_at : Engine.Time.t;
  events : Engine.Trace.event list;
  wall_events : int;
}

let outcome_to_string = function
  | Completed -> "completed"
  | Failed_circuit -> "failed"
  | Timed_out -> "timed-out"

(* The disturbance target is the bottleneck relay: its access link
   carries every cell of the circuit in both directions (star
   topology), so loss and outages there stress the transport exactly
   where the window should be sized, and a crash there kills the
   circuit mid-path. *)
let run ?(seed = 42) ?probe config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Fault_experiment.run: " ^ msg)
  in
  let rng = Engine.Rng.create seed in
  let sim = Engine.Sim.create () in
  let b = Tor_net.builder sim ~queue:config.link_queue () in
  let relay_specs =
    List.init config.relay_count (fun i ->
        let rate =
          if i + 1 = config.bottleneck_distance then config.bottleneck_rate
          else config.fast_rate
        in
        { Relay_gen.nickname = Printf.sprintf "relay%d" i; bandwidth = rate;
          latency = config.access_delay;
          flags =
            [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
              Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] })
  in
  List.iter (Tor_net.add_relay b) relay_specs;
  let client =
    Tor_net.add_endpoint b ~name:"client" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let server =
    Tor_net.add_endpoint b ~name:"server" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let net = Tor_net.finalize b in
  let relays = Tor_model.Directory.relays (Tor_net.directory net) in
  let circuit =
    Tor_model.Circuit.make
      ~id:(Tor_model.Circuit_id.next (Tor_net.circuit_ids net))
      ~client ~relays ~server
  in
  let bottleneck =
    (List.nth relays (config.bottleneck_distance - 1)).Tor_model.Relay_info.node
  in
  let topo = Netsim.Network.topology (Tor_net.network net) in
  let hub = Tor_net.hub net in
  let bottleneck_links =
    List.filter_map
      (fun (a, z) -> Netsim.Topology.link topo a z)
      [ (bottleneck, hub); (hub, bottleneck) ]
  in
  let trace = Engine.Trace.create () in
  let established_at = ref None in
  let transfer = ref None in
  (* Faults are armed at transfer start, not at time zero: circuit
     establishment has no retransmission machinery, so a lost CREATE
     would hang the run before the transport under test ever runs.
     [outage] and [crash_at] are offsets from the same instant. *)
  let arm_faults () =
    let now = Engine.Sim.now sim in
    (match config.loss with
    | Some model ->
        List.iter
          (fun link ->
            Netsim.Faults.attach_loss ~rng:(Engine.Rng.split rng) link model)
          bottleneck_links
    | None -> ());
    (match config.outage with
    | Some (down, up) ->
        List.iter
          (fun link ->
            Netsim.Faults.schedule_outage ~trace sim link
              ~down_at:(Engine.Time.add now down) ~up_at:(Engine.Time.add now up))
          bottleneck_links
    | None -> ());
    match config.crash_at with
    | Some after ->
        ignore @@
        Engine.Sim.schedule_at sim (Engine.Time.add now after) (fun () ->
            Engine.Trace.record_event trace Engine.Trace.Fault
              ~subject:(Format.asprintf "relay/%a" Netsim.Node_id.pp bottleneck)
              ~detail:"crash" (Engine.Sim.now sim);
            Tor_model.Relay_ctl.crash (Tor_net.relay_ctl net bottleneck))
    | None -> ()
  in
  Tor_model.Circuit_builder.build
    (Tor_net.switchboard net client)
    circuit
    ~on_done:(fun outcome ->
      match outcome with
      | Tor_model.Circuit_builder.Failed msg ->
          failwith ("Fault_experiment: circuit establishment failed: " ^ msg)
      | Tor_model.Circuit_builder.Refused _ | Tor_model.Circuit_builder.Gone _ ->
          (* No budgets are set in this experiment, so a refusal is a bug. *)
          failwith "Fault_experiment: circuit establishment refused"
      | Tor_model.Circuit_builder.Established { at } ->
          established_at := Some at;
          let d =
            Backtap.Transfer.deploy
              ~node_of:(Tor_net.backtap_node net)
              ~circuit ~bytes:config.transfer_bytes ~strategy:config.strategy
              ~params:config.params ~trace:(trace, "transfer")
              ~rto_min:config.rto_min ~rto_initial:config.rto_initial
              ~max_retries:config.max_retries
              ~on_complete:(fun _ -> Engine.Sim.stop sim)
              ~on_fail:(fun _ -> Engine.Sim.stop sim)
              ()
          in
          transfer := Some d;
          (* Let the invariant oracles attach before the first cell
             moves.  Probes are passive observers: an instrumented run
             must stay schedule-identical to a plain one. *)
          (match probe with
          | Some f -> f sim (Netsim.Topology.links topo) d
          | None -> ());
          arm_faults ();
          Backtap.Transfer.start d)
    ();
  Engine.Sim.run sim ~until:config.horizon;
  let d =
    match !transfer with
    | Some d -> d
    | None -> failwith "Fault_experiment: transfer never started"
  in
  let started =
    match Backtap.Transfer.first_sent_at d with Some t -> t | None -> assert false
  in
  let outcome =
    match Backtap.Transfer.state d with
    | Backtap.Transfer.Completed -> Completed
    | Backtap.Transfer.Failed -> Failed_circuit
    | Backtap.Transfer.Running -> Timed_out
  in
  let received = Tor_model.Stream.Sink.received_bytes (Backtap.Transfer.sink d) in
  let end_at =
    match (Backtap.Transfer.completed_at d, Backtap.Transfer.failed_at d) with
    | Some t, _ | None, Some t -> t
    | None, None -> Engine.Sim.now sim
  in
  let elapsed_s = Engine.Time.to_sec_f (Engine.Time.diff end_at started) in
  {
    outcome;
    time_to_last_byte = Backtap.Transfer.time_to_last_byte d;
    failed_after =
      Option.map
        (fun t -> Engine.Time.diff t started)
        (Backtap.Transfer.failed_at d);
    failed_hop = Backtap.Transfer.failed_hop d;
    goodput_bps =
      (if elapsed_s > 0. then float_of_int (8 * received) /. elapsed_s else 0.);
    received_bytes = received;
    retransmissions = Backtap.Transfer.total_retransmissions d;
    drops = Netsim.Flow_monitor.link_drops (Netsim.Topology.links topo);
    queue_high_watermark_bytes =
      List.fold_left
        (fun acc l -> Stdlib.max acc (Netsim.Link.queue_high_watermark_bytes l))
        0 (Netsim.Topology.links topo);
    blackholed_cells =
      Tor_model.Switchboard.blackholed_cells (Tor_net.switchboard net bottleneck);
    circuit_established_in =
      (match !established_at with Some t -> t | None -> assert false);
    transfer_started_at = started;
    events = Engine.Trace.events trace;
    wall_events = Engine.Sim.events_executed sim;
  }

let run_many ?jobs tasks =
  Engine.Pool.map_list ?jobs (fun (seed, config) -> run ~seed config) tasks

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

(* Paired runs: the same seed drives both, so both strategies face a
   byte-identical network and the very same fault schedule — any
   difference in outcome is the startup strategy's.  The two runs are
   independent simulations, so they ride the domain pool. *)
let compare_strategies ?jobs ?(seed = 42) config =
  match
    run_many ?jobs
      [
        (seed, { config with strategy = Circuitstart.Controller.Circuit_start });
        (seed, { config with strategy = Circuitstart.Controller.Slow_start });
        (seed, { config with strategy = Circuitstart.Controller.Predictive });
      ]
  with
  | [ circuit_start; slow_start; predictive ] ->
      { circuit_start; slow_start; predictive }
  | _ -> assert false

let pp_result fmt r =
  Format.fprintf fmt "%s" (outcome_to_string r.outcome);
  (match r.time_to_last_byte with
  | Some t -> Format.fprintf fmt ", ttlb %a" Engine.Time.pp t
  | None -> ());
  (match r.failed_after with
  | Some t ->
      Format.fprintf fmt ", failed after %a (hop %s)" Engine.Time.pp t
        (match r.failed_hop with Some h -> string_of_int h | None -> "?")
  | None -> ());
  Format.fprintf fmt ", %.2f Mbit/s goodput, %d retx, drops %a, queue hwm %d B"
    (r.goodput_bps /. 1e6) r.retransmissions Netsim.Link.pp_drop_counts r.drops
    r.queue_high_watermark_bytes

(* Deterministic partitions for sharded consensus-scale runs.

   Everything here is a pure function of (seed, population size, shard
   count): the same inputs give the same partition on every machine,
   every run, and every jobs setting — which is what lets the sharded
   engine promise bit-identical results across shard counts.  Slots are
   split into contiguous balanced ranges (shard-local circuit state
   stays cache-friendly and the owner of a slot is O(1) arithmetic);
   relays are split by a seeded SplitMix64 hash so the ownership map
   used during the exchange phase is independent of relay ordering. *)

let count ~slots ~shards =
  if shards < 1 then invalid_arg "Shard.count: shards must be positive";
  if slots < 1 then invalid_arg "Shard.count: slots must be positive";
  Stdlib.min shards slots

(* Balanced contiguous ranges: the first [slots mod k] shards get one
   extra slot.  Covers [0, slots) exactly, in shard order. *)
let slot_range ~slots ~shards k =
  let n = count ~slots ~shards in
  if k < 0 || k >= n then invalid_arg "Shard.slot_range: shard out of range";
  let base = slots / n and extra = slots mod n in
  let lo = (k * base) + Stdlib.min k extra in
  let hi = lo + base + if k < extra then 1 else 0 in
  (lo, hi)

let owner_of_slot ~slots ~shards i =
  let n = count ~slots ~shards in
  if i < 0 || i >= slots then
    invalid_arg "Shard.owner_of_slot: slot out of range";
  let base = slots / n and extra = slots mod n in
  (* Invert [slot_range]: the first [extra] shards span [base + 1]
     slots each. *)
  let wide = extra * (base + 1) in
  if i < wide then i / (base + 1) else extra + ((i - wide) / base)

(* SplitMix64's output mix — a strong, cheap finalizer.  Folding the
   seed in through the same constants keeps distinct seeds on distinct
   streams without any per-call allocation. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let relay_shard ~seed ~shards r =
  if shards < 1 then invalid_arg "Shard.relay_shard: shards must be positive";
  if r < 0 then invalid_arg "Shard.relay_shard: relay must be non-negative";
  if shards = 1 then 0
  else
    let h =
      mix64
        (Int64.add
           (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
           (Int64.of_int r))
    in
    (* Clear the sign bit after the (wrapping) truncation to a native
       int so the modulus is taken of a non-negative value. *)
    (Int64.to_int h land Stdlib.max_int) mod shards

type config = {
  relay_count : int;
  hops : int;
  relay_base_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
  crash_at : Engine.Time.t option;
  crash_position : int;
  selection : Tor_model.Directory.selection;
  max_rebuilds : int;
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;
  horizon : Engine.Time.t;
}

let default_config =
  {
    relay_count = 8;
    hops = 3;
    relay_base_rate = Engine.Units.Rate.mbit 6;
    access_delay = Engine.Time.ms 10;
    endpoint_rate = Engine.Units.Rate.mbit 100;
    transfer_bytes = Engine.Units.kib 512;
    strategy = Circuitstart.Controller.Circuit_start;
    params = Circuitstart.Params.default;
    link_queue = Netsim.Nqueue.unbounded;
    crash_at = None;
    crash_position = 2;
    selection = Tor_model.Directory.Bandwidth_weighted;
    max_rebuilds = 3;
    rto_min = Engine.Time.ms 300;
    rto_initial = Engine.Time.ms 500;
    max_retries = 4;
    horizon = Engine.Time.s 120;
  }

let validate_config c =
  if c.hops < 1 then Error "hops must be positive"
  else if c.relay_count <= c.hops then
    Error "relay_count must exceed hops (recovery needs spare relays)"
  else if c.crash_position < 1 || c.crash_position > c.hops then
    Error "crash_position must be in [1, hops]"
  else if c.transfer_bytes <= 0 then Error "transfer_bytes must be positive"
  else if c.max_rebuilds < 0 then Error "max_rebuilds must be >= 0"
  else if c.max_retries < 1 then Error "max_retries must be positive"
  else if Engine.Time.(c.horizon <= Engine.Time.zero) then
    Error "horizon must be positive"
  else
    match Circuitstart.Params.validate c.params with
    | Error msg -> Error msg
    | Ok _ -> Ok c

type outcome =
  | Completed
  | Exhausted of Tor_model.Session.reason
  | Timed_out

let outcome_to_string = function
  | Completed -> "completed"
  | Exhausted reason ->
      "exhausted:" ^ Tor_model.Session.reason_to_string reason
  | Timed_out -> "timed-out"

type result = {
  outcome : outcome;
  time_to_last_byte : Engine.Time.t option;
  rebuilds : int;
  generations : int;
  recovery_times : Engine.Time.t list;
  time_to_recover : Engine.Time.t option;
  delivered_bytes : int;
  duplicates : int;
  retransmissions : int;
  drops : Netsim.Link.drop_counts;
  queue_high_watermark_bytes : int;
  goodput_bps : float;
  excluded : Netsim.Node_id.t list;
  events : Engine.Trace.event list;
  wall_events : int;
}

(* Relay bandwidths cycle over four tiers so the two selection policies
   actually differ: under uniform selection every relay is equally
   likely, under bandwidth weighting the fat tiers dominate. *)
let relay_rate base i =
  Engine.Units.Rate.bps (Engine.Units.Rate.to_bps base * (1 + (i mod 4)))

let run ?(seed = 42) ?probe config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Recovery_experiment.run: " ^ msg)
  in
  let rng = Engine.Rng.create seed in
  let sim = Engine.Sim.create () in
  let b = Tor_net.builder sim ~queue:config.link_queue () in
  List.iter (Tor_net.add_relay b)
    (List.init config.relay_count (fun i ->
         { Relay_gen.nickname = Printf.sprintf "relay%d" i;
           bandwidth = relay_rate config.relay_base_rate i;
           latency = config.access_delay;
           flags =
             [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
               Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] }));
  let client =
    Tor_net.add_endpoint b ~name:"client" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let server =
    Tor_net.add_endpoint b ~name:"server" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let net = Tor_net.finalize b in
  let trace = Engine.Trace.create () in
  let transfers = ref [] in
  let generation = ref 0 in
  let first_sent = ref None in
  (* The crash is armed exactly once, when the first generation's
     transfer starts: the victim is whatever relay the session drew at
     path position [crash_position], so the schedule is a function of
     the seed alone and is identical for both strategies of a paired
     comparison. *)
  let crash_armed = ref false in
  let arm_crash (circuit : Tor_model.Circuit.t) =
    match config.crash_at with
    | Some after when not !crash_armed ->
        crash_armed := true;
        let victim =
          match
            List.nth_opt (Tor_model.Circuit.nodes circuit) config.crash_position
          with
          | Some node -> node
          | None -> assert false (* crash_position <= hops, validated *)
        in
        let at = Engine.Time.add (Engine.Sim.now sim) after in
        ignore @@
        Engine.Sim.schedule_at sim at (fun () ->
            Engine.Trace.record_event trace Engine.Trace.Fault
              ~subject:(Format.asprintf "relay/%a" Netsim.Node_id.pp victim)
              ~detail:"crash" (Engine.Sim.now sim);
            Tor_model.Relay_ctl.crash (Tor_net.relay_ctl net victim))
    | Some _ | None -> ()
  in
  let deploy ~circuit ~offset ~on_complete ~on_fail =
    let gen = !generation in
    incr generation;
    let dr = ref None in
    let d =
      Backtap.Transfer.deploy
        ~node_of:(Tor_net.backtap_node net)
        ~circuit ~bytes:config.transfer_bytes ~strategy:config.strategy
        ~params:config.params
        ~trace:(trace, Printf.sprintf "transfer/g%d" gen)
        ~rto_min:config.rto_min ~rto_initial:config.rto_initial
        ~max_retries:config.max_retries ~offset ~on_complete
        ~on_fail:(fun at ->
          let failed_hop = Option.bind !dr Backtap.Transfer.failed_hop in
          on_fail ~failed_hop at)
        ()
    in
    dr := Some d;
    transfers := d :: !transfers;
    (* Oracles attach to every generation's transfer before it starts;
       probes are passive, keeping the run schedule-identical. *)
    (match probe with
    | Some f ->
        f sim
          (Netsim.Topology.links (Netsim.Network.topology (Tor_net.network net)))
          d
    | None -> ());
    {
      Tor_model.Session.start =
        (fun () ->
          if gen = 0 then begin
            first_sent := Some (Engine.Sim.now sim);
            arm_crash circuit
          end;
          Backtap.Transfer.start d);
      delivered = (fun () -> Backtap.Transfer.delivered_bytes d);
      teardown = (fun () -> Backtap.Transfer.teardown d);
    }
  in
  let session =
    Tor_model.Session.create
      ~sb:(Tor_net.switchboard net client)
      ~directory:(Tor_net.directory net)
      ~ids:(Tor_net.circuit_ids net)
      ~server ~rng ~hops:config.hops ~deploy ~selection:config.selection
      ~max_rebuilds:config.max_rebuilds ~trace:(trace, "session")
      ~on_outcome:(fun _ -> Engine.Sim.stop sim)
      ()
  in
  Tor_model.Session.start session;
  Engine.Sim.run sim ~until:config.horizon;
  let outcome, end_at =
    match Tor_model.Session.outcome session with
    | Some (Tor_model.Session.Completed { at; _ }) -> (Completed, at)
    | Some (Tor_model.Session.Exhausted { at; reason; _ }) ->
        (Exhausted reason, at)
    | None -> (Timed_out, Engine.Sim.now sim)
  in
  let started =
    match !first_sent with Some t -> t | None -> Engine.Sim.now sim
  in
  let delivered = Tor_model.Session.delivered_bytes session in
  let elapsed_s = Engine.Time.to_sec_f (Engine.Time.diff end_at started) in
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 !transfers in
  {
    outcome;
    time_to_last_byte =
      (match outcome with
      | Completed -> Some (Engine.Time.diff end_at started)
      | Exhausted _ | Timed_out -> None);
    rebuilds = Tor_model.Session.rebuilds session;
    generations = Tor_model.Session.generation session;
    recovery_times = Tor_model.Session.recovery_times session;
    time_to_recover =
      (match Tor_model.Session.recovery_times session with
      | first :: _ -> Some first
      | [] -> None);
    delivered_bytes = delivered;
    duplicates =
      sum (fun d -> Tor_model.Stream.Sink.duplicates (Backtap.Transfer.sink d));
    retransmissions = sum Backtap.Transfer.total_retransmissions;
    drops =
      Netsim.Flow_monitor.link_drops
        (Netsim.Topology.links (Netsim.Network.topology (Tor_net.network net)));
    queue_high_watermark_bytes =
      List.fold_left
        (fun acc l -> Stdlib.max acc (Netsim.Link.queue_high_watermark_bytes l))
        0
        (Netsim.Topology.links (Netsim.Network.topology (Tor_net.network net)));
    goodput_bps =
      (if elapsed_s > 0. then float_of_int (8 * delivered) /. elapsed_s else 0.);
    excluded = Tor_model.Session.excluded session;
    events = Engine.Trace.events trace;
    wall_events = Engine.Sim.events_executed sim;
  }

let run_many ?jobs tasks =
  Engine.Pool.map_list ?jobs (fun (seed, config) -> run ~seed config) tasks

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

(* Paired on the seed: both strategies draw the same paths, suffer the
   same crash, and differ only in how fast their windows open — the
   goodput gap is the startup strategy's alone. *)
let compare_strategies ?jobs ?(seed = 42) config =
  match
    run_many ?jobs
      [
        (seed, { config with strategy = Circuitstart.Controller.Circuit_start });
        (seed, { config with strategy = Circuitstart.Controller.Slow_start });
        (seed, { config with strategy = Circuitstart.Controller.Predictive });
      ]
  with
  | [ circuit_start; slow_start; predictive ] ->
      { circuit_start; slow_start; predictive }
  | _ -> assert false

let pp_result fmt r =
  Format.fprintf fmt "%s" (outcome_to_string r.outcome);
  (match r.time_to_last_byte with
  | Some t -> Format.fprintf fmt ", ttlb %a" Engine.Time.pp t
  | None -> ());
  Format.fprintf fmt ", %d rebuild%s" r.rebuilds
    (if r.rebuilds = 1 then "" else "s");
  (match r.time_to_recover with
  | Some t -> Format.fprintf fmt ", recovered in %a" Engine.Time.pp t
  | None -> ());
  Format.fprintf fmt
    ", %d B delivered, %d dup, %d retx, drops %a, queue hwm %d B, %.2f Mbit/s"
    r.delivered_bytes r.duplicates r.retransmissions Netsim.Link.pp_drop_counts
    r.drops r.queue_high_watermark_bytes (r.goodput_bps /. 1e6)

(** Figure 1 (bottom panel): concurrent circuits over a random star.

    A random relay population is generated, [circuit_count] circuits
    are selected bandwidth-weighted from it (each with its own client
    and server leaf), all circuits are established through the control
    plane, and each then transfers a fixed amount of data under the
    chosen transport.  The time-to-last-byte samples feed the CDF.

    The generator is seeded: running the same config with a different
    [strategy] (or [transport = Legacy_sendme]) reuses the identical
    network, circuits and start times — paired comparison, as the
    paper's "with/without CircuitStart" curves require. *)

type transport =
  | Backtap of Circuitstart.Controller.strategy
      (** Hop-by-hop BackTap with the given startup scheme. *)
  | Legacy_sendme  (** Vanilla Tor end-to-end SENDME windows. *)

type config = {
  relay_count : int;
  circuit_count : int;  (** Paper: 50. *)
  relays_per_circuit : int;  (** Paper: 3. *)
  transfer_bytes : int;
  transport : transport;
  params : Circuitstart.Params.t;  (** Used by BackTap transports. *)
  relay_config : Relay_gen.config;
  endpoint_rate : Engine.Units.Rate.t;
  endpoint_delay : Engine.Time.t;
  start_stagger : Engine.Time.t;
      (** Each transfer starts uniformly within this window after its
          circuit is up (desynchronises the 50 slow starts). *)
  teardown_circuits : bool;
      (** Send DESTROY through each circuit once its transfer completes
          (Tor's lifecycle; exercises the control plane's teardown
          path).  Default [false]. *)
  horizon : Engine.Time.t;
  seed : int;
}

val default_config : config
(** 30 relays, 50 circuits of 3 relays, 500 KiB transfers, BackTap +
    CircuitStart, default relay population, 100 Mbit/s / 10 ms
    endpoints, 200 ms stagger, 60 s horizon, seed 1. *)

val validate_config : config -> (config, string) result

type circuit_outcome = {
  circuit_index : int;
  ttlb : Engine.Time.t option;  (** [None] if unfinished at horizon. *)
  bottleneck_rate : Engine.Units.Rate.t;  (** Of its path. *)
  optimal_source_cells : int;
  received_bytes : int;  (** Delivered to the sink by the horizon. *)
  retransmissions : int;  (** Hop-level retransmissions (BackTap). *)
}

type result = {
  outcomes : circuit_outcome list;
  completed : int;
  total : int;
  ttlb_seconds : float array;  (** Completed transfers only. *)
  wall_events : int;  (** Simulator events executed (cost metric). *)
  max_link_queue_bytes : int;
      (** Largest link-queue occupancy seen anywhere — the bufferbloat
          a transport inflicts on the relays. *)
  mean_link_queue_hwm_bytes : float;
      (** Mean per-link high watermark. *)
  cell_latency : Engine.Stats.Online.t;
      (** Per-cell end-to-end latency, merged over all circuits — the
          interactivity cost each transport imposes. *)
}

val run : config -> result
(** Raises [Invalid_argument] on an invalid config, [Failure] if the
    directory cannot satisfy path selection.  [run] is a pure function
    of its config (own simulator, own RNG, no shared mutable state), so
    independent configs may run on separate domains. *)

val run_many : ?jobs:int -> config list -> result list
(** One {!run} per config on a domain pool of [jobs] workers
    ({!Engine.Pool.default_jobs} when omitted).  Results are in config
    order and byte-identical to mapping {!run} sequentially. *)

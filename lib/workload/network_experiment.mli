(** Consensus-scale network workload: a whole-Tor-network-shaped
    population at round granularity.

    The paper's F1c evaluates 50 circuits on a small star; this
    experiment scales the same CS-vs-SS question to thousands of relays
    and 10^5+ concurrent circuits by moving the data plane from
    per-cell events to one event per circuit per RTT round.  Per round
    a circuit delivers [min cwnd bdp] cells against its bottleneck
    relay's fair share ([capacity / active circuits]) and advances its
    window with the controller's round-level semantics: double while
    ramping, then on saturation either compensate to the BDP estimate
    (CircuitStart) or halve and climb back linearly (slow start).  At
    small scale the resulting TTLB CDFs reproduce the F1c star shape;
    at full scale a run completes millions of circuit lifetimes.

    What makes that affordable:

    - {b Pooled flat circuit state} — the PR-4 free-list pattern
      generalized: circuits are parallel int arrays recycled through an
      int-stack free list, relay occupancy is [active]/[load_cells]
      counters charged and credited like {!Tor_model.Switchboard}'s
      budget counters (admission is literally
      {!Tor_model.Switchboard.within_budget}); arrival and teardown
      allocate nothing.
    - {b Streaming analysis} — TTLBs go straight into fixed-bin
      {!Engine.Stats.Sketch}es (O(1) memory per circuit); exact
      retention is opt-in ([retain_exact]) for small-scale validation.

    The workload is a closed population of [slots] sessions cycling
    exponential think time → circuit arrival → rounds → teardown, which
    yields Poisson-like arrivals and departures at a pinned concurrency
    ceiling; [elephant_fraction] of arrivals are bulk transfers, the
    rest mice, and an optional diurnal wave modulates the arrival rate.
    Deterministic per (seed, config): byte-identical across
    [--jobs 1/2/4] and paired across strategies. *)

type config = {
  relays : int;  (** Population size; at least 4. *)
  slots : int;  (** Concurrent session slots = circuit-pool size. *)
  target_lifetimes : int;
      (** Stop after this many completed circuits; [0] = [10 * slots]. *)
  duration : Engine.Time.t;
      (** Optional sim-time horizon; [zero] = until the lifetime goal. *)
  population : Relay_gen.config;
      (** Log-normal (heavy-tailed) bandwidth population. *)
  budget : Tor_model.Switchboard.budget;
      (** Per-relay admission budget applied to the flat occupancy
          counters; {!Tor_model.Switchboard.no_budget} = admit all. *)
  mean_think : Engine.Time.t;
      (** Mean exponential think time between a slot's circuits. *)
  diurnal_amplitude : float;
      (** [0] = flat load; else the arrival rate is modulated by
          [1 + a sin(2πt/period)].  Must be in [\[0, 0.95\]]. *)
  diurnal_period : Engine.Time.t;
  elephant_fraction : float;  (** Fraction of arrivals that are bulk. *)
  elephant_cells : int;
  mice_cells : int;
  initial_cwnd : int;  (** Ramp start, cells. *)
  cwnd_cap : int;
  access_delay : Engine.Time.t;  (** Client/server access latency. *)
  max_path_redraws : int;
      (** Admission-refused arrivals redraw this many times before
          giving up (counted in [refused_arrivals]). *)
  leave_hazard : float;
      (** Per-relay per-second hazard of an up relay leaving; tried
          once per [churn_tick].  [0] (with [join_hazard] 0) disables
          churn entirely: no churn timers are armed and the run is
          byte-identical to the churn-free workload. *)
  join_hazard : float;
      (** Per-relay per-second hazard of a down relay (re)joining. *)
  crash_fraction : float;
      (** Probability in [\[0, 1\]] that a departure is a crash (its
          circuits die immediately) rather than a graceful drain
          (admissions refused, existing circuits run until
          [drain_grace], then die). *)
  drain_grace : Engine.Time.t;
  epoch_period : Engine.Time.t;
      (** Directory snapshot refresh: clients draw paths from the
          population as of the last boundary, so draws race departures
          by up to one period (failed attempts count in [gone_draws] /
          [draining_refusals]). *)
  churn_tick : Engine.Time.t;  (** Hazard-trial granularity. *)
  spare_relays : int;
      (** Extra relays that start down (and invisible) and join under
          [join_hazard]. *)
  strategy : Circuitstart.Controller.strategy;
  sketch_bins : int;
  sketch_max : Engine.Time.t;  (** Upper edge of the TTLB sketches. *)
  retain_exact : bool;
      (** Also retain exact TTLBs (small scale only — O(n) memory). *)
  shards : int;
      (** Within-run parallelism.  [0] (the default) is the classic
          single-domain engine, byte-identical to pre-shard releases.
          [k >= 1] partitions the circuit slots into [min k slots]
          contiguous shards ({!Shard.slot_range}), each driven by its
          own sim on its own domain, advancing in lockstep exchange
          windows with a barrier at every boundary.  Results are
          identical for {e every} positive [k] — the shard count
          chooses how the schedule executes, never what it computes —
          but deterministically different from [shards = 0], whose
          occupancy updates apply mid-window. *)
}

val default_config : config
(** 200 relays, 2000 slots, 20k lifetimes, 5% elephants of 4096 cells
    over 32-cell mice, no budget, no diurnal wave. *)

val validate_config : config -> (config, string) result

val lifetimes_goal : config -> int
(** The effective lifetime target: [target_lifetimes], or [10 * slots]
    when it is 0. *)

type result = {
  relays : int;
  slots : int;
  completed : int;  (** Circuit lifetimes completed. *)
  mice : int;  (** Completed mice. *)
  elephants : int;
      (** Completed elephants — often far below [elephant_arrivals]:
          bulk transfers outlive the measurement horizon and show up in
          [abandoned] instead, which is exactly the background load
          they exist to provide. *)
  arrivals : int;  (** Admitted circuit arrivals (all kinds). *)
  elephant_arrivals : int;
  refused_arrivals : int;
      (** Arrivals that found no admissible path and went back to
          thinking. *)
  admission_redraws : int;
  abandoned : int;  (** Circuits torn down live at the horizon. *)
  delivered_cells : int;
  rounds : int;  (** RTT-round events executed. *)
  pool_recycles : int;
      (** Arrivals served by a previously released pool record. *)
  peak_active : int;  (** Highest concurrent circuit count. *)
  ttlb_all : Engine.Stats.Sketch.t;
  ttlb_mice : Engine.Stats.Sketch.t;
  ttlb_elephants : Engine.Stats.Sketch.t;
  ttlb_exact : float array;  (** [\[||\]] unless [retain_exact]. *)
  orphaned_circuits : int;
      (** Relay [active] occupancy left after every circuit was torn
          down — 0 unless pool recycling is broken. *)
  orphaned_cells : int;  (** Same for the queued-cell counters. *)
  churn_departs : int;  (** Departures begun (crashes + drains). *)
  churn_crashes : int;
  churn_drains_completed : int;  (** Drain deadlines reached. *)
  churn_restarts : int;  (** Down relays that (re)joined. *)
  churn_epochs : int;  (** Snapshot refreshes. *)
  churn_kills : int;
      (** Circuits killed by completed departures; each leaves a resume
          stash on its slot. *)
  resumed : int;
      (** Killed transfers that resumed on a fresh path (keeping their
          original start time, so the rebuild gap lands in the TTLB
          tail). *)
  gone_draws : int;
      (** Admission checks that hit a relay already down — the
          round-level analog of a build racing a departure into a
          typed GONE. *)
  draining_refusals : int;
      (** Admission checks that hit a draining relay — the analog of
          [Refused (Draining)]. *)
  rounds_through_down : int;
      (** Churn oracle 1's counter: rounds taken by a circuit with a
          departed hop.  Always 0 unless the kill sweep is disabled. *)
  depart_residue : int;
      (** Churn oracle 2's counter: completed departures that left
          nonzero slot or byte occupancy.  Always 0 unless the kill
          sweep is disabled. *)
  end_time : Engine.Time.t;
  wall_events : int;
}

val unsafe_disable_pool_release : bool ref
(** Test/fuzz hook: when [true], teardown skips crediting the released
    circuit's occupancy back to its relays — the canonical pool-reuse
    bug.  Runs then end with nonzero orphan counters, which the check
    harness's pool oracle flags (and shrinks).  Reset it. *)

val unsafe_disable_churn_kill : bool ref
(** Test/fuzz hook: when [true], completed departures skip the kill
    sweep — circuits keep extending through departed relays and their
    occupancy survives.  [rounds_through_down] and [depart_residue] go
    nonzero, which the churn oracles flag (and shrink).  Reset it. *)

val unsafe_unordered_exchange : bool ref
(** Test/fuzz hook: when [true], sharded runs apply relay occupancy
    deltas in place mid-window instead of deferring them to the
    barrier exchange, so what a shard observes depends on which slots
    it co-hosts and runs with different shard counts diverge.  The
    check harness's shards=1-vs-4 differential catches the divergence
    and shrinks it to a replayable line.  No effect on [shards = 0].
    Reset it. *)

val run : ?seed:int -> config -> result
(** Deterministic per [(seed, config)].  Raises [Invalid_argument] if
    the config does not validate or the population draws no exit. *)

val run_instrumented : ?seed:int -> config -> result * float
(** {!run} plus honest allocation accounting: the float is the total
    minor words allocated during the run summed over {e all}
    participating domains — the calling domain plus, for sharded runs,
    every worker domain of the shard team.  Kept out of {!result} so
    result digests stay comparable across instrumented and plain
    runs. *)

val run_many : ?jobs:int -> (int * config) list -> result list
(** One {!run} per task on a domain pool; results in task order,
    byte-identical to sequential mapping. *)

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

val compare_strategies : ?jobs:int -> ?seed:int -> config -> comparison
(** All three startup strategies against the identical seed — same
    population, same arrivals, same path and size draws.  The config's
    own [strategy] field is ignored. *)

val pp_result : Format.formatter -> result -> unit

(** Figure 1 (upper panels): single-circuit cwnd traces.

    One circuit of [relay_count] relays in a star; every access link is
    fast except the designated bottleneck relay's.  The circuit is
    established through the control plane, then a fixed transfer runs
    under the chosen startup strategy while every hop's congestion
    window is traced.  The result carries the source trace (re-based to
    the transfer start, as in the paper's time axis), the analytic
    optimum, and shape statistics (peak = overshoot, settled value,
    exit value). *)

type config = {
  relay_count : int;  (** Relays on the path (paper: 3). *)
  bottleneck_distance : int;
      (** Which relay is slow, 1-based hops from the source (paper
          panels: 1 and 3). *)
  bottleneck_rate : Engine.Units.Rate.t;
  fast_rate : Engine.Units.Rate.t;  (** All other relays. *)
  access_delay : Engine.Time.t;  (** Every leaf's one-way delay. *)
  endpoint_rate : Engine.Units.Rate.t;  (** Client and server links. *)
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
      (** Per-link queue capacity; bounded capacities introduce loss
          that the hop reliability must recover (default unbounded —
          congestion then shows as delay, which is what delay-based
          control observes). *)
  horizon : Engine.Time.t;  (** Simulated time budget. *)
}

val default_config : config
(** 3 relays, bottleneck at distance 1, 3 vs 50 Mbit/s, 10 ms access
    delay, 100 Mbit/s endpoints, 1 MiB transfer, CircuitStart with
    default parameters, 10 s horizon. *)

val validate_config : config -> (config, string) result

type result = {
  source_cwnd : (Engine.Time.t * float) array;
      (** Source hop's window (cells) over time since transfer start. *)
  hop_cwnds : (Engine.Time.t * float) array list;
      (** Every hop's trace, client first, same time base. *)
  optimal_source_cells : int;  (** The dashed line, from {!Optmodel}. *)
  propagated_cells : int;  (** [min_i W*_i] (backpropagation target). *)
  peak_cells : float;  (** Largest source window — the overshoot. *)
  settled_cells : float;  (** Source window at the horizon (or finish). *)
  exit_cells : int option;  (** Window chosen when ramp-up ended. *)
  time_to_last_byte : Engine.Time.t option;
  transfer_started_at : Engine.Time.t;  (** Absolute simulation time. *)
  circuit_established_in : Engine.Time.t;
  retransmissions : int;
  wall_events : int;  (** Simulator events executed (cost metric). *)
}

val run : ?seed:int -> config -> result
(** Raises [Invalid_argument] on an invalid config, [Failure] if the
    circuit cannot be established.  Pure per [(seed, config)];
    independent runs are domain-safe. *)

val run_many : ?jobs:int -> ?seed:int -> config list -> result list
(** One {!run} per config on a domain pool of [jobs] workers
    ({!Engine.Pool.default_jobs} when omitted), all with the same
    [seed].  Results are in config order and byte-identical to mapping
    {!run} sequentially. *)

type config = {
  relay_count : int;
  bottleneck_distance : int;
  bottleneck_rate : Engine.Units.Rate.t;
  stepped_rate : Engine.Units.Rate.t;
  fast_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  step_after : Engine.Time.t;
  transfer_bytes : int;
  adaptive : bool;
  params : Circuitstart.Params.t;
  target_fraction : float;
  horizon : Engine.Time.t;
}

let default_config =
  {
    relay_count = 3;
    bottleneck_distance = 2;
    bottleneck_rate = Engine.Units.Rate.mbit 3;
    stepped_rate = Engine.Units.Rate.mbit 12;
    fast_rate = Engine.Units.Rate.mbit 50;
    access_delay = Engine.Time.ms 10;
    endpoint_rate = Engine.Units.Rate.mbit 100;
    step_after = Engine.Time.s 2;
    transfer_bytes = Engine.Units.mib 8;
    adaptive = true;
    params = Circuitstart.Params.default;
    target_fraction = 0.7;
    horizon = Engine.Time.s 20;
  }

let validate_config c =
  if c.relay_count < 1 then Error "relay_count must be positive"
  else if c.bottleneck_distance < 1 || c.bottleneck_distance > c.relay_count then
    Error "bottleneck_distance out of range"
  else if c.transfer_bytes <= 0 then Error "transfer_bytes must be positive"
  else if c.target_fraction <= 0. || c.target_fraction > 1. then
    Error "target_fraction must be in (0, 1]"
  else if Engine.Time.(c.step_after <= Engine.Time.zero) then
    Error "step_after must be positive"
  else if Engine.Time.(c.horizon <= c.step_after) then
    Error "horizon must exceed step_after"
  else
    match Circuitstart.Params.validate c.params with
    | Ok _ -> Ok c
    | Error msg -> Error msg

type result = {
  optimal_before_cells : int;
  optimal_after_cells : int;
  cwnd_at_step : float;
  reaction_time : Engine.Time.t option;
  final_cwnd : float;
  source_cwnd : (Engine.Time.t * float) array;
  wall_events : int;
}

let run ?(seed = 7) config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Adaptive_experiment.run: " ^ msg)
  in
  ignore (Engine.Rng.create seed : Engine.Rng.t);
  let sim = Engine.Sim.create () in
  let b = Tor_net.builder sim () in
  List.iteri
    (fun i () ->
      let rate =
        if i + 1 = config.bottleneck_distance then config.bottleneck_rate
        else config.fast_rate
      in
      Tor_net.add_relay b
        { Relay_gen.nickname = Printf.sprintf "relay%d" i; bandwidth = rate;
          latency = config.access_delay;
          flags =
            [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
              Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] })
    (List.init config.relay_count (fun _ -> ()));
  let client =
    Tor_net.add_endpoint b ~name:"client" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let server =
    Tor_net.add_endpoint b ~name:"server" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let net = Tor_net.finalize b in
  let relays = Tor_model.Directory.relays (Tor_net.directory net) in
  let circuit =
    Tor_model.Circuit.make
      ~id:(Tor_model.Circuit_id.next (Tor_net.circuit_ids net))
      ~client ~relays ~server
  in
  let params =
    { config.params with
      Circuitstart.Params.adaptive = config.adaptive;
      re_probe_after = (if config.adaptive then 3 else config.params.re_probe_after);
    }
  in
  (* Analytic optima before and after the step. *)
  let path_with rate =
    Optmodel.Path_model.of_specs
      (List.map
         (fun node ->
           let spec = Tor_net.access_spec net node in
           let bneck =
             (List.nth relays (config.bottleneck_distance - 1)).Tor_model.Relay_info.node
           in
           if Netsim.Node_id.equal node bneck then
             { spec with Optmodel.Path_model.rate }
           else spec)
         (Tor_model.Circuit.nodes circuit))
  in
  let optimal_before =
    Optmodel.Optimal_window.source_window_cells (path_with config.bottleneck_rate)
  in
  let optimal_after =
    Optmodel.Optimal_window.source_window_cells (path_with config.stepped_rate)
  in
  let trace = Engine.Trace.create () in
  let transfer = ref None in
  let step_time = ref None in
  Tor_model.Circuit_builder.build
    (Tor_net.switchboard net client)
    circuit
    ~on_done:(fun outcome ->
      match outcome with
      | Tor_model.Circuit_builder.Failed msg ->
          failwith ("Adaptive_experiment: establishment failed: " ^ msg)
      | Tor_model.Circuit_builder.Refused _ | Tor_model.Circuit_builder.Gone _ ->
          (* No budgets are set in this experiment, so a refusal is a bug. *)
          failwith "Adaptive_experiment: establishment refused"
      | Tor_model.Circuit_builder.Established _ ->
          let d =
            Backtap.Transfer.deploy
              ~node_of:(Tor_net.backtap_node net)
              ~circuit ~bytes:config.transfer_bytes
              ~strategy:Circuitstart.Controller.Circuit_start ~params
              ~trace:(trace, "adaptive") ()
          in
          transfer := Some d;
          Backtap.Transfer.start d;
          (* Raise the bottleneck's access links (both directions) at
             the configured instant. *)
          ignore
            (Engine.Sim.schedule_after sim config.step_after (fun () ->
                 step_time := Some (Engine.Sim.now sim);
                 let bneck =
                   (List.nth relays (config.bottleneck_distance - 1))
                     .Tor_model.Relay_info.node
                 in
                 let topo = Netsim.Network.topology (Tor_net.network net) in
                 let hub = Tor_net.hub net in
                 List.iter
                   (fun (a, b2) ->
                     match Netsim.Topology.link topo a b2 with
                     | Some l -> Netsim.Link.set_rate l config.stepped_rate
                     | None -> assert false)
                   [ (bneck, hub); (hub, bneck) ])))
    ();
  Engine.Sim.run sim ~until:config.horizon;
  let d =
    match !transfer with
    | Some d -> d
    | None -> failwith "Adaptive_experiment: transfer never started"
  in
  let started =
    match Backtap.Transfer.first_sent_at d with Some t -> t | None -> assert false
  in
  let series =
    match Engine.Trace.find trace "adaptive/cwnd/0" with
    | Some ts -> Engine.Timeseries.points ts
    | None -> [||]
  in
  let stepped =
    match !step_time with Some t -> t | None -> failwith "step never fired"
  in
  let cwnd_at_step =
    Array.fold_left
      (fun acc (time, v) -> if Engine.Time.(time <= stepped) then v else acc)
      (float_of_int params.Circuitstart.Params.initial_cwnd)
      series
  in
  let target = config.target_fraction *. float_of_int optimal_after in
  let reaction_time =
    Array.fold_left
      (fun acc (time, v) ->
        match acc with
        | Some _ -> acc
        | None ->
            if Engine.Time.(time > stepped) && v >= target then
              Some (Engine.Time.diff time stepped)
            else None)
      None series
  in
  let final_cwnd =
    match Array.length series with 0 -> nan | n -> snd series.(n - 1)
  in
  {
    optimal_before_cells = optimal_before;
    optimal_after_cells = optimal_after;
    cwnd_at_step;
    reaction_time;
    final_cwnd;
    source_cwnd =
      Array.of_list
        (List.filter_map
           (fun (time, v) ->
             if Engine.Time.(time < started) then None
             else Some (Engine.Time.diff time started, v))
           (Array.to_list series));
    wall_events = Engine.Sim.events_executed sim;
  }

let run_many ?jobs ?seed configs =
  Engine.Pool.map_list ?jobs (fun config -> run ?seed config) configs

type config = {
  relay_count : int;
  hops : int;
  relay_base_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  sessions : int;
  mean_interarrival : Engine.Time.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
  max_circuits : int option;
  max_queued_bytes : int option;
  selection : Tor_model.Directory.selection;
  max_rebuilds : int;
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;
  horizon : Engine.Time.t;
}

let default_config =
  {
    relay_count = 4;
    hops = 3;
    relay_base_rate = Engine.Units.Rate.mbit 4;
    access_delay = Engine.Time.ms 10;
    endpoint_rate = Engine.Units.Rate.mbit 100;
    sessions = 12;
    mean_interarrival = Engine.Time.ms 150;
    transfer_bytes = Engine.Units.kib 64;
    strategy = Circuitstart.Controller.Circuit_start;
    params = Circuitstart.Params.default;
    link_queue = Netsim.Nqueue.unbounded;
    max_circuits = Some 6;
    max_queued_bytes = Some (Engine.Units.kib 48);
    selection = Tor_model.Directory.Bandwidth_weighted;
    max_rebuilds = 6;
    rto_min = Engine.Time.ms 300;
    rto_initial = Engine.Time.ms 500;
    max_retries = 4;
    horizon = Engine.Time.s 180;
  }

let validate_config c =
  if c.hops < 1 then Error "hops must be positive"
  else if c.relay_count <= c.hops then
    Error "relay_count must exceed hops (refused sessions need spare relays)"
  else if c.sessions < 1 then Error "sessions must be positive"
  else if c.transfer_bytes <= 0 then Error "transfer_bytes must be positive"
  else if Engine.Time.(c.mean_interarrival <= Engine.Time.zero) then
    Error "mean_interarrival must be positive"
  else if (match c.max_circuits with Some n -> n < 1 | None -> false) then
    Error "max_circuits must be positive when set"
  else if (match c.max_queued_bytes with Some n -> n < 1 | None -> false) then
    Error "max_queued_bytes must be positive when set"
  else if c.max_rebuilds < 0 then Error "max_rebuilds must be >= 0"
  else if c.max_retries < 1 then Error "max_retries must be positive"
  else if Engine.Time.(c.horizon <= Engine.Time.zero) then
    Error "horizon must be positive"
  else
    match Circuitstart.Params.validate c.params with
    | Error msg -> Error msg
    | Ok _ -> Ok c

type result = {
  sessions : int;
  completed : int;
  exhausted : int;
  timed_out : int;
  rebuilds : int;
  refused_builds : int;
  admitted : int;
  refusals : int;
  refusal_rate : float;
  oom_kills : int;
  overload_enters : int;
  delivered_bytes : int;
  mean_ttlb : Engine.Time.t option;
  max_ttlb : Engine.Time.t option;
  goodput_bps : float;
  relay_byte_hwm : int;
  events : Engine.Trace.event list;
  wall_events : int;
}

(* Same four-tier bandwidth cycle as the recovery experiment, so
   bandwidth-weighted selection concentrates the crowd on the fat
   relays — which is precisely what makes them overload first. *)
let relay_rate base i =
  Engine.Units.Rate.bps (Engine.Units.Rate.to_bps base * (1 + (i mod 4)))

let run ?(seed = 42) ?probe ?relay_probe config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Overload_experiment.run: " ^ msg)
  in
  let rng = Engine.Rng.create seed in
  (* Independent streams, drawn in a fixed order: the arrival schedule
     and each session's path draws are functions of the seed alone,
     identical for both strategies of a paired comparison. *)
  let arrival_rng = Engine.Rng.split rng in
  let session_rngs = Array.init config.sessions (fun _ -> Engine.Rng.split rng) in
  let sim = Engine.Sim.create () in
  let b = Tor_net.builder sim ~queue:config.link_queue () in
  List.iter (Tor_net.add_relay b)
    (List.init config.relay_count (fun i ->
         { Relay_gen.nickname = Printf.sprintf "relay%d" i;
           bandwidth = relay_rate config.relay_base_rate i;
           latency = config.access_delay;
           flags =
             [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
               Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] }));
  let clients =
    Array.init config.sessions (fun i ->
        Tor_net.add_endpoint b ~name:(Printf.sprintf "client%d" i)
          ~rate:config.endpoint_rate ~delay:config.access_delay)
  in
  let server =
    Tor_net.add_endpoint b ~name:"server" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let net = Tor_net.finalize b in
  let trace = Engine.Trace.create () in
  let budget =
    { Tor_model.Switchboard.max_circuits = config.max_circuits;
      max_queued_bytes = config.max_queued_bytes }
  in
  let relay_ctls =
    List.map
      (fun (r : Tor_model.Relay_info.t) ->
        let ctl = Tor_net.relay_ctl net r.node in
        Tor_model.Relay_ctl.set_budget ctl budget;
        Tor_model.Relay_ctl.set_trace ctl
          (trace, Printf.sprintf "relay/%s" r.nickname);
        ctl)
      (Tor_model.Directory.relays (Tor_net.directory net))
  in
  (match relay_probe with Some f -> f sim relay_ctls | None -> ());
  let transfers = ref [] in
  let remaining = ref config.sessions in
  let arrivals =
    (* Poisson process: cumulative exponential inter-arrival draws. *)
    let t = ref Engine.Time.zero in
    Array.init config.sessions (fun _ ->
        let gap =
          Engine.Rng.exponential arrival_rng
            ~mean:(Engine.Time.to_sec_f config.mean_interarrival)
        in
        t := Engine.Time.add !t (Engine.Time.of_sec_f gap);
        !t)
  in
  let ttlbs = Engine.Stats.Online.create () in
  let make_session i =
    let client = clients.(i) in
    let deploy ~circuit ~offset ~on_complete ~on_fail =
      let dr = ref None in
      let d =
        Backtap.Transfer.deploy
          ~node_of:(Tor_net.backtap_node net)
          ~circuit ~bytes:config.transfer_bytes ~strategy:config.strategy
          ~params:config.params
          ~rto_min:config.rto_min ~rto_initial:config.rto_initial
          ~max_retries:config.max_retries ~offset ~on_complete
          ~on_fail:(fun at ->
            let failed_hop = Option.bind !dr Backtap.Transfer.failed_hop in
            on_fail ~failed_hop at)
          ()
      in
      dr := Some d;
      transfers := d :: !transfers;
      (match probe with
      | Some f ->
          f sim
            (Netsim.Topology.links
               (Netsim.Network.topology (Tor_net.network net)))
            d
      | None -> ());
      {
        Tor_model.Session.start = (fun () -> Backtap.Transfer.start d);
        delivered = (fun () -> Backtap.Transfer.delivered_bytes d);
        teardown =
          (fun () ->
            (* Quiesce before unregistering: an OOM-killed or failed
               generation must stop retransmitting into flows that are
               about to disappear. *)
            List.iter Backtap.Hop_sender.abort (Backtap.Transfer.senders d);
            Backtap.Transfer.teardown d);
      }
    in
    Tor_model.Session.create
      ~sb:(Tor_net.switchboard net client)
      ~directory:(Tor_net.directory net)
      ~ids:(Tor_net.circuit_ids net)
      ~server ~rng:session_rngs.(i) ~hops:config.hops ~deploy
      ~selection:config.selection ~max_rebuilds:config.max_rebuilds
      ~trace:(trace, Printf.sprintf "session%d" i)
      ~on_outcome:(fun outcome ->
        (match outcome with
        | Tor_model.Session.Completed { at; _ } ->
            Engine.Stats.Online.add ttlbs
              (Engine.Time.to_sec_f (Engine.Time.diff at arrivals.(i)))
        | Tor_model.Session.Exhausted _ -> ());
        decr remaining;
        if !remaining = 0 then Engine.Sim.stop sim)
      ()
  in
  let sessions = Array.init config.sessions make_session in
  Array.iteri
    (fun i session ->
      ignore
        (Engine.Sim.schedule_at sim arrivals.(i) (fun () ->
             Tor_model.Session.start session)
          : Engine.Sim.handle))
    sessions;
  Engine.Sim.run sim ~until:config.horizon;
  let completed = ref 0 and exhausted = ref 0 and timed_out = ref 0 in
  let last_terminal = ref Engine.Time.zero in
  Array.iter
    (fun session ->
      match Tor_model.Session.outcome session with
      | Some (Tor_model.Session.Completed { at; _ }) ->
          incr completed;
          last_terminal := Engine.Time.max !last_terminal at
      | Some (Tor_model.Session.Exhausted { at; _ }) ->
          incr exhausted;
          last_terminal := Engine.Time.max !last_terminal at
      | None ->
          incr timed_out;
          last_terminal := Engine.Time.max !last_terminal (Engine.Sim.now sim))
    sessions;
  let sum_sessions f =
    Array.fold_left (fun acc s -> acc + f s) 0 sessions
  in
  let sum_relays f =
    List.fold_left (fun acc ctl -> acc + f ctl) 0 relay_ctls
  in
  let admitted = sum_relays Tor_model.Relay_ctl.admitted in
  let refusals = sum_relays Tor_model.Relay_ctl.refusals in
  let delivered =
    sum_sessions Tor_model.Session.delivered_bytes
  in
  let started = arrivals.(0) in
  let elapsed_s =
    Engine.Time.to_sec_f (Engine.Time.diff !last_terminal started)
  in
  {
    sessions = config.sessions;
    completed = !completed;
    exhausted = !exhausted;
    timed_out = !timed_out;
    rebuilds = sum_sessions Tor_model.Session.rebuilds;
    refused_builds = sum_sessions Tor_model.Session.refused_builds;
    admitted;
    refusals;
    refusal_rate =
      (if admitted + refusals > 0 then
         float_of_int refusals /. float_of_int (admitted + refusals)
       else 0.);
    oom_kills = sum_relays Tor_model.Relay_ctl.oom_kills;
    overload_enters = sum_relays Tor_model.Relay_ctl.overload_enters;
    delivered_bytes = delivered;
    mean_ttlb =
      (if Engine.Stats.Online.count ttlbs > 0 then
         Some (Engine.Time.of_sec_f (Engine.Stats.Online.mean ttlbs))
       else None);
    max_ttlb =
      (if Engine.Stats.Online.count ttlbs > 0 then
         Some (Engine.Time.of_sec_f (Engine.Stats.Online.max ttlbs))
       else None);
    goodput_bps =
      (if elapsed_s > 0. then float_of_int (8 * delivered) /. elapsed_s else 0.);
    relay_byte_hwm =
      List.fold_left
        (fun acc ctl ->
          Stdlib.max acc
            (Tor_model.Switchboard.byte_high_watermark
               (Tor_model.Relay_ctl.switchboard ctl)))
        0 relay_ctls;
    events = Engine.Trace.events trace;
    wall_events = Engine.Sim.events_executed sim;
  }

let run_many ?jobs tasks =
  Engine.Pool.map_list ?jobs (fun (seed, config) -> run ~seed config) tasks

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

(* Paired on the seed: both strategies face the identical arrival
   schedule and path draws — refusal rate, OOM kills and goodput differ
   only through how aggressively each startup strategy queues bytes at
   the relays. *)
let compare_strategies ?jobs ?(seed = 42) config =
  match
    run_many ?jobs
      [
        (seed, { config with strategy = Circuitstart.Controller.Circuit_start });
        (seed, { config with strategy = Circuitstart.Controller.Slow_start });
        (seed, { config with strategy = Circuitstart.Controller.Predictive });
      ]
  with
  | [ circuit_start; slow_start; predictive ] ->
      { circuit_start; slow_start; predictive }
  | _ -> assert false

let pp_result fmt r =
  Format.fprintf fmt "%d/%d completed (%d exhausted, %d timed out)" r.completed
    r.sessions r.exhausted r.timed_out;
  Format.fprintf fmt ", refusal rate %.1f%% (%d refused / %d admitted)"
    (100. *. r.refusal_rate) r.refusals r.admitted;
  Format.fprintf fmt ", %d oom kill%s" r.oom_kills
    (if r.oom_kills = 1 then "" else "s");
  (match r.mean_ttlb with
  | Some t -> Format.fprintf fmt ", mean ttlb %a" Engine.Time.pp t
  | None -> ());
  Format.fprintf fmt ", %d B delivered, %.2f Mbit/s, hwm %d B"
    r.delivered_bytes (r.goodput_bps /. 1e6) r.relay_byte_hwm

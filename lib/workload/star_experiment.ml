type transport =
  | Backtap of Circuitstart.Controller.strategy
  | Legacy_sendme

type config = {
  relay_count : int;
  circuit_count : int;
  relays_per_circuit : int;
  transfer_bytes : int;
  transport : transport;
  params : Circuitstart.Params.t;
  relay_config : Relay_gen.config;
  endpoint_rate : Engine.Units.Rate.t;
  endpoint_delay : Engine.Time.t;
  start_stagger : Engine.Time.t;
  teardown_circuits : bool;
  horizon : Engine.Time.t;
  seed : int;
}

let default_config =
  {
    relay_count = 30;
    circuit_count = 50;
    relays_per_circuit = 3;
    transfer_bytes = Engine.Units.kib 500;
    transport = Backtap Circuitstart.Controller.Circuit_start;
    params = Circuitstart.Params.default;
    relay_config = Relay_gen.default_config;
    endpoint_rate = Engine.Units.Rate.mbit 100;
    endpoint_delay = Engine.Time.ms 10;
    start_stagger = Engine.Time.ms 200;
    teardown_circuits = false;
    horizon = Engine.Time.s 60;
    seed = 1;
  }

let validate_config c =
  if c.relay_count < c.relays_per_circuit then
    Error "relay_count below relays_per_circuit"
  else if c.circuit_count < 1 then Error "circuit_count must be positive"
  else if c.relays_per_circuit < 1 then Error "relays_per_circuit must be positive"
  else if c.transfer_bytes <= 0 then Error "transfer_bytes must be positive"
  else if Engine.Time.is_negative c.start_stagger then Error "start_stagger negative"
  else if Engine.Time.(c.horizon <= Engine.Time.zero) then Error "horizon must be positive"
  else
    match (Relay_gen.validate_config c.relay_config, Circuitstart.Params.validate c.params)
    with
    | Error msg, _ | _, Error msg -> Error msg
    | Ok _, Ok _ -> Ok c

type circuit_outcome = {
  circuit_index : int;
  ttlb : Engine.Time.t option;
  bottleneck_rate : Engine.Units.Rate.t;
  optimal_source_cells : int;
  received_bytes : int;
  retransmissions : int;
}

type result = {
  outcomes : circuit_outcome list;
  completed : int;
  total : int;
  ttlb_seconds : float array;
  wall_events : int;
  max_link_queue_bytes : int;
  mean_link_queue_hwm_bytes : float;
  cell_latency : Engine.Stats.Online.t;
}

type runner = {
  start : unit -> unit;
  ttlb : unit -> Engine.Time.t option;
  complete : unit -> bool;
  received_bytes : unit -> int;
  retransmissions : unit -> int;
  latency : unit -> Engine.Stats.Online.t;
}

(* [run] is a pure function of its config: it builds its own
   [Sim.t]/[Rng.t] and touches no state shared with other runs, so a
   sweep's replicates are domain-safe closures for [Engine.Pool]. *)
let run config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Star_experiment.run: " ^ msg)
  in
  let rng = Engine.Rng.create config.seed in
  let net_rng = Engine.Rng.split rng in
  let path_rng = Engine.Rng.split rng in
  let stagger_rng = Engine.Rng.split rng in
  let sim = Engine.Sim.create () in
  let b = Tor_net.builder sim () in
  List.iter (Tor_net.add_relay b)
    (Relay_gen.generate net_rng config.relay_config ~n:config.relay_count);
  let endpoints =
    List.init config.circuit_count (fun i ->
        let client =
          Tor_net.add_endpoint b
            ~name:(Printf.sprintf "client%02d" i)
            ~rate:config.endpoint_rate ~delay:config.endpoint_delay
        in
        let server =
          Tor_net.add_endpoint b
            ~name:(Printf.sprintf "server%02d" i)
            ~rate:config.endpoint_rate ~delay:config.endpoint_delay
        in
        (client, server))
  in
  let net = Tor_net.finalize b in
  let dir = Tor_net.directory net in
  let circuits =
    List.mapi
      (fun i (client, server) ->
        match Tor_model.Directory.select_path dir path_rng ~hops:config.relays_per_circuit ()
        with
        | None -> failwith "Star_experiment: path selection failed"
        | Some relays ->
            ( i,
              Tor_model.Circuit.make
                ~id:(Tor_model.Circuit_id.next (Tor_net.circuit_ids net))
                ~client ~relays ~server ))
      endpoints
  in
  (* Pre-draw start staggers so they do not depend on establishment
     order (paired runs must use identical offsets). *)
  let staggers =
    List.map
      (fun _ ->
        if Engine.Time.equal config.start_stagger Engine.Time.zero then Engine.Time.zero
        else
          Engine.Time.of_ns64
            (Int64.of_float
               (Engine.Rng.float stagger_rng
                  (Int64.to_float (Engine.Time.to_ns config.start_stagger)))))
      circuits
  in
  let remaining = ref (List.length circuits) in
  let make_runner (_, circuit) : runner =
    match config.transport with
    | Backtap strategy ->
        let d =
          Backtap.Transfer.deploy
            ~node_of:(Tor_net.backtap_node net)
            ~circuit ~bytes:config.transfer_bytes ~strategy ~params:config.params
            ~on_complete:(fun _ ->
              decr remaining;
              if config.teardown_circuits then begin
                (* Tor closes idle circuits: the client sends DESTROY,
                   which the control automata propagate hop by hop. *)
                let client = circuit.Tor_model.Circuit.client in
                let guard =
                  match circuit.Tor_model.Circuit.relays with
                  | r :: _ -> r.Tor_model.Relay_info.node
                  | [] -> assert false
                in
                Tor_model.Switchboard.send_cell
                  (Tor_net.switchboard net client)
                  ~dst:guard
                  (Tor_model.Cell.make circuit.Tor_model.Circuit.id
                     Tor_model.Cell.Destroy)
              end;
              if !remaining = 0 then Engine.Sim.stop sim)
            ()
        in
        {
          start = (fun () -> Backtap.Transfer.start d);
          ttlb = (fun () -> Backtap.Transfer.time_to_last_byte d);
          complete = (fun () -> Backtap.Transfer.complete d);
          received_bytes =
            (fun () -> Tor_model.Stream.Sink.received_bytes (Backtap.Transfer.sink d));
          retransmissions = (fun () -> Backtap.Transfer.total_retransmissions d);
          latency = (fun () -> Backtap.Transfer.cell_latency_stats d);
        }
    | Legacy_sendme ->
        (* SENDME registers circuit handlers on the switchboards, which
           the circuit builder also uses during establishment — so
           deployment must wait until the transfer actually starts. *)
        let d = ref None in
        {
          start =
            (fun () ->
              let x =
                Tor_model.Sendme.deploy
                  ~sb_of:(Tor_net.switchboard net)
                  ~circuit ~bytes:config.transfer_bytes ()
              in
              d := Some x;
              (* SENDME has no completion callback; poll cheaply. *)
              let poll_done = ref false in
              Engine.Sim.every sim (Engine.Time.ms 50)
                (fun () ->
                  if (not !poll_done) && Tor_model.Sendme.complete x then begin
                    poll_done := true;
                    decr remaining;
                    if !remaining = 0 then Engine.Sim.stop sim
                  end)
                ~stop:(fun () -> !poll_done);
              Tor_model.Sendme.start x);
          ttlb =
            (fun () -> Option.bind !d Tor_model.Sendme.time_to_last_byte);
          complete =
            (fun () ->
              match !d with Some x -> Tor_model.Sendme.complete x | None -> false);
          received_bytes =
            (fun () ->
              match !d with
              | Some x -> Tor_model.Stream.Sink.received_bytes (Tor_model.Sendme.sink x)
              | None -> 0);
          retransmissions = (fun () -> 0);
          latency =
            (fun () ->
              match !d with
              | Some x -> Tor_model.Sendme.cell_latency_stats x
              | None -> Engine.Stats.Online.create ());
        }
  in
  let runners = List.map make_runner circuits in
  (* Establish all circuits concurrently; each transfer starts its own
     stagger after its circuit is up. *)
  List.iteri
    (fun i (_, circuit) ->
      let runner = List.nth runners i in
      let stagger = List.nth staggers i in
      Tor_model.Circuit_builder.build
        (Tor_net.switchboard net circuit.Tor_model.Circuit.client)
        circuit
        ~on_done:(fun outcome ->
          match outcome with
          | Tor_model.Circuit_builder.Failed msg ->
              failwith ("Star_experiment: establishment failed: " ^ msg)
          | Tor_model.Circuit_builder.Refused _ | Tor_model.Circuit_builder.Gone _ ->
              failwith "Star_experiment: establishment refused"
          | Tor_model.Circuit_builder.Established _ ->
              ignore
                (Engine.Sim.schedule_after sim stagger (fun () -> runner.start ())))
        ())
    circuits;
  Engine.Sim.run sim ~until:config.horizon;
  let outcomes =
    List.map2
      (fun (i, circuit) runner ->
        let path = Tor_net.path_model net circuit in
        {
          circuit_index = i;
          ttlb = runner.ttlb ();
          bottleneck_rate = Optmodel.Optimal_window.bottleneck_rate path;
          optimal_source_cells = Optmodel.Optimal_window.source_window_cells path;
          received_bytes = runner.received_bytes ();
          retransmissions = runner.retransmissions ();
        })
      circuits runners
  in
  let ttlb_seconds =
    outcomes
    |> List.filter_map (fun (o : circuit_outcome) ->
           Option.map Engine.Time.to_sec_f o.ttlb)
    |> Array.of_list
  in
  let hwms =
    List.map Netsim.Link.queue_high_watermark_bytes
      (Netsim.Topology.links (Netsim.Network.topology (Tor_net.network net)))
  in
  {
    outcomes;
    completed = Array.length ttlb_seconds;
    total = List.length circuits;
    ttlb_seconds;
    wall_events = Engine.Sim.events_executed sim;
    max_link_queue_bytes = List.fold_left Stdlib.max 0 hwms;
    mean_link_queue_hwm_bytes =
      (let n = List.length hwms in
       if n = 0 then 0.
       else float_of_int (List.fold_left ( + ) 0 hwms) /. float_of_int n);
    cell_latency =
      List.fold_left
        (fun acc runner -> Engine.Stats.Online.merge acc (runner.latency ()))
        (Engine.Stats.Online.create ())
        runners;
  }

let run_many ?jobs configs = Engine.Pool.map_list ?jobs run configs

(** Transfers under injected faults: lossy links, outages, relay churn.

    The clean-network experiments answer "how fast does CircuitStart
    converge?"; this one answers "does the circuit survive, and at what
    cost, when the network misbehaves?".  It builds the usual star
    (client, [relay_count] relays with one bottleneck, server), runs
    one transfer, and disturbs the bottleneck relay — the worst place
    for the circuit — in up to three ways:

    - a {!Netsim.Faults.loss_model} on both directions of its access
      link (random or bursty wire loss);
    - a scheduled outage window on that link;
    - a full relay {e crash} ({!Tor_model.Relay_ctl.crash}) that
      black-holes the circuit mid-transfer.

    Faults are armed when the transfer starts (circuit establishment
    has no retransmission machinery), and [outage] / [crash_at] are
    offsets from that instant.  The run ends when the transfer
    completes, when the circuit {e fails} (a hop sender exhausts its
    retransmission budget), or at [horizon], whichever is first. *)

type config = {
  relay_count : int;
  bottleneck_distance : int;  (** Hops from the client, 1-based. *)
  bottleneck_rate : Engine.Units.Rate.t;
  fast_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
  loss : Netsim.Faults.loss_model option;
      (** Attached to both directions of the bottleneck access link. *)
  outage : (Engine.Time.t * Engine.Time.t) option;
      (** [(down, up)] offsets from transfer start. *)
  crash_at : Engine.Time.t option;
      (** Crash the bottleneck relay this long after transfer start. *)
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;  (** Per-cell retransmission budget. *)
  horizon : Engine.Time.t;
}

val default_config : config
(** 512 KiB over 3 relays, 3 Mbit bottleneck at the middle hop, no
    faults; tight failure detection ([rto_min] 300 ms, [max_retries]
    4) so crash runs terminate in seconds, not minutes — while a
    fault-free run under these defaults retransmits nothing, so every
    retransmission in a faulty run is attributable to the fault. *)

val validate_config : config -> (config, string) result

type outcome =
  | Completed
  | Failed_circuit  (** A hop sender tripped; see [failed_after]. *)
  | Timed_out  (** Still running at [horizon] — a liveness bug. *)

val outcome_to_string : outcome -> string

type result = {
  outcome : outcome;
  time_to_last_byte : Engine.Time.t option;  (** [Completed] only. *)
  failed_after : Engine.Time.t option;
      (** Failure instant minus transfer start ([Failed_circuit] only).
          Bounds how long a dead relay stalled the circuit. *)
  failed_hop : int option;  (** Path position that tripped. *)
  goodput_bps : float;
      (** Bits delivered to the sink per second of transfer time (up to
          completion or failure). *)
  received_bytes : int;
  retransmissions : int;
  drops : Netsim.Link.drop_counts;  (** Summed over every link. *)
  queue_high_watermark_bytes : int;
      (** Deepest any single link queue ever got, in bytes — the
          congestion footprint the startup strategy left on the
          network. *)
  blackholed_cells : int;
      (** Cells that arrived at the bottleneck relay after it crashed. *)
  circuit_established_in : Engine.Time.t;
  transfer_started_at : Engine.Time.t;
  events : Engine.Trace.event list;
      (** Fault / recovery / abort log, oldest first. *)
  wall_events : int;  (** Simulator events executed (cost metric). *)
}

val run :
  ?seed:int ->
  ?probe:(Engine.Sim.t -> Netsim.Link.t list -> Backtap.Transfer.t -> unit) ->
  config ->
  result
(** Deterministic per [(seed, config)]: identical seeds yield
    byte-identical results.  Raises [Invalid_argument] if the config
    does not validate, [Failure] if circuit establishment fails.  Each
    run owns its simulator and RNG, so independent [(seed, config)]
    replicates are domain-safe.

    [probe], when given, is called once — after the transfer is
    deployed, before its first cell moves — with the simulator, every
    link of the topology and the transfer, so invariant oracles
    ({!Check.Oracle}) can attach.  Probes must be passive (observe
    only): an instrumented run is then schedule-identical to a plain
    one, which the differential harness checks. *)

val run_many : ?jobs:int -> (int * config) list -> result list
(** One {!run} per [(seed, config)] replicate on a domain pool of
    [jobs] workers ({!Engine.Pool.default_jobs} when omitted).
    Results are in task order and byte-identical to mapping {!run}
    sequentially. *)

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

val compare_strategies : ?jobs:int -> ?seed:int -> config -> comparison
(** Run the config three times with the same seed (default 42) — once
    per startup strategy — so all face the identical fault schedule.
    The config's own [strategy] field is ignored.  The trio runs on
    the domain pool ([jobs] as in {!run_many}). *)

val pp_result : Format.formatter -> result -> unit

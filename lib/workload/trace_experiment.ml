type config = {
  relay_count : int;
  bottleneck_distance : int;
  bottleneck_rate : Engine.Units.Rate.t;
  fast_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
  horizon : Engine.Time.t;
}

let default_config =
  {
    relay_count = 3;
    bottleneck_distance = 1;
    bottleneck_rate = Engine.Units.Rate.mbit 3;
    fast_rate = Engine.Units.Rate.mbit 50;
    access_delay = Engine.Time.ms 10;
    endpoint_rate = Engine.Units.Rate.mbit 100;
    transfer_bytes = Engine.Units.mib 1;
    strategy = Circuitstart.Controller.Circuit_start;
    params = Circuitstart.Params.default;
    link_queue = Netsim.Nqueue.unbounded;
    horizon = Engine.Time.s 10;
  }

let validate_config c =
  if c.relay_count < 1 then Error "relay_count must be positive"
  else if c.bottleneck_distance < 1 || c.bottleneck_distance > c.relay_count then
    Error "bottleneck_distance must be in [1, relay_count]"
  else if c.transfer_bytes <= 0 then Error "transfer_bytes must be positive"
  else if Engine.Time.(c.horizon <= Engine.Time.zero) then Error "horizon must be positive"
  else
    match Circuitstart.Params.validate c.params with
    | Ok _ -> Ok c
    | Error msg -> Error msg

type result = {
  source_cwnd : (Engine.Time.t * float) array;
  hop_cwnds : (Engine.Time.t * float) array list;
  optimal_source_cells : int;
  propagated_cells : int;
  peak_cells : float;
  settled_cells : float;
  exit_cells : int option;
  time_to_last_byte : Engine.Time.t option;
  transfer_started_at : Engine.Time.t;
  circuit_established_in : Engine.Time.t;
  retransmissions : int;
  wall_events : int;
}

(* Re-base a trace to the transfer start and extend the last value so
   the step function is well-defined over the whole window. *)
let rebase ~start points =
  Array.of_list
    (List.filter_map
       (fun (time, v) ->
         if Engine.Time.(time < start) then None
         else Some (Engine.Time.diff time start, v))
       (Array.to_list points))

let run ?(seed = 42) config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Trace_experiment.run: " ^ msg)
  in
  ignore (Engine.Rng.create seed : Engine.Rng.t);
  let sim = Engine.Sim.create () in
  let b = Tor_net.builder sim ~queue:config.link_queue () in
  let relay_specs =
    List.init config.relay_count (fun i ->
        let rate =
          if i + 1 = config.bottleneck_distance then config.bottleneck_rate
          else config.fast_rate
        in
        { Relay_gen.nickname = Printf.sprintf "relay%d" i; bandwidth = rate;
          latency = config.access_delay;
          flags =
            [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
              Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] })
  in
  List.iter (Tor_net.add_relay b) relay_specs;
  let client =
    Tor_net.add_endpoint b ~name:"client" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let server =
    Tor_net.add_endpoint b ~name:"server" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let net = Tor_net.finalize b in
  let relays = Tor_model.Directory.relays (Tor_net.directory net) in
  let circuit =
    Tor_model.Circuit.make
      ~id:(Tor_model.Circuit_id.next (Tor_net.circuit_ids net))
      ~client ~relays ~server
  in
  let path = Tor_net.path_model net circuit in
  let trace = Engine.Trace.create () in
  let established_at = ref None in
  let transfer = ref None in
  Tor_model.Circuit_builder.build
    (Tor_net.switchboard net client)
    circuit
    ~on_done:(fun outcome ->
      match outcome with
      | Tor_model.Circuit_builder.Failed msg ->
          failwith ("Trace_experiment: circuit establishment failed: " ^ msg)
      | Tor_model.Circuit_builder.Refused _ | Tor_model.Circuit_builder.Gone _ ->
          (* No budgets are set in this experiment, so a refusal is a bug. *)
          failwith "Trace_experiment: circuit establishment refused"
      | Tor_model.Circuit_builder.Established { at } ->
          established_at := Some at;
          let d =
            Backtap.Transfer.deploy
              ~node_of:(Tor_net.backtap_node net)
              ~circuit ~bytes:config.transfer_bytes ~strategy:config.strategy
              ~params:config.params ~trace:(trace, "trace")
              ~on_complete:(fun _ -> Engine.Sim.stop sim)
              ()
          in
          transfer := Some d;
          Backtap.Transfer.start d)
    ();
  Engine.Sim.run sim ~until:config.horizon;
  let d =
    match !transfer with
    | Some d -> d
    | None -> failwith "Trace_experiment: transfer never started"
  in
  let started =
    match Backtap.Transfer.first_sent_at d with Some t -> t | None -> assert false
  in
  let hops = Tor_model.Circuit.hop_count circuit in
  let hop_series =
    List.init hops (fun i ->
        match Engine.Trace.find trace (Printf.sprintf "trace/cwnd/%d" i) with
        | Some ts -> rebase ~start:started (Engine.Timeseries.points ts)
        | None -> [||])
  in
  let source_cwnd = List.nth hop_series 0 in
  let source_sender =
    match Backtap.Transfer.sender_at d 0 with Some s -> s | None -> assert false
  in
  let peak_cells =
    Array.fold_left (fun acc (_, v) -> Float.max acc v) 0. source_cwnd
  in
  let settled_cells =
    float_of_int (Circuitstart.Controller.cwnd (Backtap.Hop_sender.controller source_sender))
  in
  {
    source_cwnd;
    hop_cwnds = hop_series;
    optimal_source_cells = Optmodel.Optimal_window.source_window_cells path;
    propagated_cells = Optmodel.Optimal_window.propagated_estimate_cells path;
    peak_cells;
    settled_cells;
    exit_cells =
      Circuitstart.Controller.exit_cwnd (Backtap.Hop_sender.controller source_sender);
    time_to_last_byte = Backtap.Transfer.time_to_last_byte d;
    transfer_started_at = started;
    circuit_established_in =
      (match !established_at with Some t -> t | None -> assert false);
    retransmissions = Backtap.Transfer.total_retransmissions d;
    wall_events = Engine.Sim.events_executed sim;
  }

let run_many ?jobs ?seed configs =
  Engine.Pool.map_list ?jobs (fun config -> run ?seed config) configs

(* Consensus-scale network workload.

   The packet-level experiments (star / fault / overload) model every
   cell on every link; at thousands of relays and 10^5 concurrent
   circuits that is billions of events per run.  This experiment keeps
   the same timer-wheel engine and the same controller *semantics* but
   moves the data plane up one level: a circuit is advanced once per
   RTT round, delivering [min cwnd bdp] cells against its bottleneck
   hop's fair share.  One event per circuit per round is what makes a
   million circuit lifetimes per run affordable.

   All hot-path state is pooled flat records — the PR-4 free-list
   pattern generalized from [Backtap.Hop_sender]'s pending pool:

   - relay occupancy lives in [active]/[load_cells] int arrays charged
     and credited exactly like [Switchboard]'s budget counters (the
     admission predicate IS [Switchboard.within_budget]);
   - circuit records are strided slices of one flat int array recycled
     through an int-stack free list; arrival and teardown allocate
     nothing, and a round touches one cache-resident record;
   - TTLB analysis is streamed into fixed-bin {!Engine.Stats.Sketch}es,
     O(1) memory per circuit.

   Everything is a deterministic function of (seed, config): per-slot
   RNG streams are split from the master seed in a fixed order at
   setup, so runs are byte-identical across [--jobs 1/2/4] and paired
   CS-vs-SS comparisons share the identical population, arrival and
   size draws. *)

type config = {
  relays : int;
  slots : int;
  target_lifetimes : int;
  duration : Engine.Time.t;
  population : Relay_gen.config;
  budget : Tor_model.Switchboard.budget;
  mean_think : Engine.Time.t;
  diurnal_amplitude : float;
  diurnal_period : Engine.Time.t;
  elephant_fraction : float;
  elephant_cells : int;
  mice_cells : int;
  initial_cwnd : int;
  cwnd_cap : int;
  access_delay : Engine.Time.t;
  max_path_redraws : int;
  strategy : Circuitstart.Controller.strategy;
  sketch_bins : int;
  sketch_max : Engine.Time.t;
  retain_exact : bool;
}

let default_config =
  {
    relays = 200;
    slots = 2_000;
    target_lifetimes = 0;
    duration = Engine.Time.zero;
    population = Relay_gen.default_config;
    budget = Tor_model.Switchboard.no_budget;
    mean_think = Engine.Time.ms 500;
    diurnal_amplitude = 0.;
    diurnal_period = Engine.Time.s 600;
    elephant_fraction = 0.05;
    elephant_cells = 4_096;
    mice_cells = 32;
    initial_cwnd = 1;
    cwnd_cap = 10_000;
    access_delay = Engine.Time.ms 10;
    max_path_redraws = 4;
    strategy = Circuitstart.Controller.Circuit_start;
    sketch_bins = 2_048;
    sketch_max = Engine.Time.s 600;
    retain_exact = false;
  }

let validate_config c =
  if c.relays < 4 then Error "relays must be at least 4 (3 distinct hops + spare)"
  else if c.slots < 1 then Error "slots must be positive"
  else if c.target_lifetimes < 0 then Error "target_lifetimes must be >= 0"
  else if Engine.Time.is_negative c.duration then Error "duration must be >= 0"
  else if Engine.Time.(c.mean_think <= Engine.Time.zero) then
    Error "mean_think must be positive"
  else if
    not (Float.is_finite c.diurnal_amplitude)
    || c.diurnal_amplitude < 0. || c.diurnal_amplitude > 0.95
  then Error "diurnal_amplitude must be in [0, 0.95]"
  else if Engine.Time.(c.diurnal_period <= Engine.Time.zero) then
    Error "diurnal_period must be positive"
  else if
    not (Float.is_finite c.elephant_fraction)
    || c.elephant_fraction < 0. || c.elephant_fraction > 1.
  then Error "elephant_fraction must be in [0, 1]"
  else if c.elephant_cells < 1 || c.mice_cells < 1 then
    Error "transfer sizes must be positive"
  else if c.initial_cwnd < 1 then Error "initial_cwnd must be positive"
  else if c.cwnd_cap < c.initial_cwnd then Error "cwnd_cap must be >= initial_cwnd"
  else if c.max_path_redraws < 0 then Error "max_path_redraws must be >= 0"
  else if (match c.budget.Tor_model.Switchboard.max_circuits with
           | Some n -> n < 1 | None -> false)
  then Error "budget.max_circuits must be positive when set"
  else if (match c.budget.Tor_model.Switchboard.max_queued_bytes with
           | Some n -> n < 1 | None -> false)
  then Error "budget.max_queued_bytes must be positive when set"
  else if c.sketch_bins < 1 then Error "sketch_bins must be positive"
  else if Engine.Time.(c.sketch_max <= Engine.Time.zero) then
    Error "sketch_max must be positive"
  else
    match Relay_gen.validate_config c.population with
    | Error msg -> Error msg
    | Ok _ -> Ok c

let lifetimes_goal c =
  if c.target_lifetimes > 0 then c.target_lifetimes else 10 * c.slots

type result = {
  relays : int;
  slots : int;
  completed : int;
  mice : int;
  elephants : int;
  arrivals : int;
  elephant_arrivals : int;
  refused_arrivals : int;
  admission_redraws : int;
  abandoned : int;
  delivered_cells : int;
  rounds : int;
  pool_recycles : int;
  peak_active : int;
  ttlb_all : Engine.Stats.Sketch.t;
  ttlb_mice : Engine.Stats.Sketch.t;
  ttlb_elephants : Engine.Stats.Sketch.t;
  ttlb_exact : float array;
  orphaned_circuits : int;
  orphaned_cells : int;
  end_time : Engine.Time.t;
  wall_events : int;
}

(* Test/fuzz hook: when set, teardown skips crediting the released
   circuit's occupancy back to its relays — the classic pool-recycling
   bug where a recycled record's charges outlive it.  The run then ends
   with nonzero [orphaned_circuits]/[orphaned_cells], which the check
   harness's pool oracle flags. *)
let unsafe_disable_pool_release = ref false

(* Phases of the round-level controller. *)
let phase_ramp = 0
let phase_steady = 1
let phase_fixed = 2  (* [Fixed _] strategy: the window never moves *)

(* Field offsets within one strided circuit record ([state.circ]). *)
let f_hop0 = 0
let f_hop1 = 1
let f_hop2 = 2
let f_remaining = 3
let f_cwnd = 4
let f_phase = 5
let f_kind = 6  (* 0 = mouse, 1 = elephant *)
let f_started_ns = 7
let f_rtt_ns = 8
let f_used = 9  (* the record has served at least one circuit *)
let stride = 10

type state = {
  config : config;
  sim : Engine.Sim.t;
  (* Relay population (struct of arrays). *)
  cap_cps : float array;  (* bandwidth in cells/sec *)
  lat_ns : int array;
  active : int array;  (* circuits currently routed through the relay *)
  load_cells : int array;  (* queued cells charged by those circuits *)
  cum_all : float array;  (* cumulative bandwidth weights, all relays *)
  exit_ids : int array;
  cum_exit : float array;
  (* Circuit pool: flat records of [stride] ints each, free-list
     recycled.  One strided record, not parallel arrays: a round event
     touches every field of one circuit, so keeping the fields adjacent
     costs ~2 cache lines per event where 10 separate 10^5-entry arrays
     cost ~10 misses — at a million events per second that locality is
     the difference, not the arithmetic. *)
  circ : int array;  (* slots * stride; field offsets [f_*] below *)
  (* [c_rtt.(i)] is the boxed [Time.t] of session [i]'s current
     circuit's [f_rtt_ns], built once at arrival: without flambda every
     [Time.ns] call allocates a fresh Int64 box, and the round timer
     rearms ~50 times per lifetime.  Indexed per session (a slot hosts
     at most one circuit at a time). *)
  c_rtt : Engine.Time.t array;
  free : int array;
  mutable free_top : int;
  (* Session slots.  [s_timer] is filled right after construction (its
     callbacks close over the state record). *)
  mutable s_timer : Engine.Sim.Timer.t array;
  s_rng : Engine.Rng.t array;
  s_circ : int array;  (* pool index, or -1 while thinking *)
  (* Counters and streaming analysis. *)
  mutable completed : int;
  mutable mice_done : int;
  mutable elephants_done : int;
  mutable arrivals : int;
  mutable elephant_arrivals : int;
  mutable refused_arrivals : int;
  mutable admission_redraws : int;
  mutable delivered_cells : int;
  mutable rounds : int;
  mutable pool_recycles : int;
  mutable live : int;
  mutable peak_active : int;
  goal : int;
  ttlb_all : Engine.Stats.Sketch.t;
  ttlb_mice : Engine.Stats.Sketch.t;
  ttlb_elephants : Engine.Stats.Sketch.t;
  exact : Engine.Stats.Samples.t option;
  cell_bytes : int;
}

let now_ns st = Int64.to_int (Engine.Time.to_ns (Engine.Sim.now st.sim))

(* Bandwidth-weighted draw: binary search for the first cumulative
   weight exceeding a uniform draw over the total. *)
let draw_weighted rng cum =
  let n = Array.length cum in
  let u = Engine.Rng.float rng cum.(n - 1) in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo

(* Draw a relay id, mapping through [ids] when drawing from a
   flag-restricted sub-population (exits). *)
let draw_id rng cum ids =
  let i = draw_weighted rng cum in
  match ids with Some ids -> ids.(i) | None -> i

(* Draw a relay distinct from [a] and [b]: a few weighted redraws, then
   a deterministic scan so selection can never loop. *)
let draw_distinct st rng cum ids ~a ~b =
  let r = ref (draw_id rng cum ids) in
  let tries = ref 0 in
  while (!r = a || !r = b) && !tries < 8 do
    r := draw_id rng cum ids;
    incr tries
  done;
  if !r <> a && !r <> b then !r
  else begin
    let n = st.config.relays in
    let c = ref ((!r + 1) mod n) in
    while !c = a || !c = b do
      c := (!c + 1) mod n
    done;
    !c
  end

let admits st r =
  Tor_model.Switchboard.within_budget st.config.budget ~circuits:st.active.(r)
    ~queued_bytes:(st.load_cells.(r) * st.cell_bytes)

let charge_hop st r delta_cells =
  st.load_cells.(r) <- st.load_cells.(r) + delta_cells

(* Return a circuit record to the pool.  Crediting the occupancy back
   to the relays is the part a recycling bug forgets — modeled by the
   [unsafe_disable_pool_release] hook. *)
let unregister st r cwnd =
  st.active.(r) <- st.active.(r) - 1;
  charge_hop st r (-cwnd)

(* [p] is the record's base offset into [st.circ] (slot * stride) —
   the free list and the session slots store base offsets directly, so
   the hot path never multiplies. *)
let release st p =
  if not !unsafe_disable_pool_release then begin
    let cwnd = st.circ.(p + f_cwnd) in
    unregister st st.circ.(p + f_hop0) cwnd;
    unregister st st.circ.(p + f_hop1) cwnd;
    unregister st st.circ.(p + f_hop2) cwnd
  end;
  st.live <- st.live - 1;
  st.free.(st.free_top) <- p;
  st.free_top <- st.free_top + 1

let diurnal_factor st =
  let a = st.config.diurnal_amplitude in
  if a = 0. then 1.
  else
    let t = Engine.Time.to_sec_f (Engine.Sim.now st.sim) in
    let period = Engine.Time.to_sec_f st.config.diurnal_period in
    1. +. (a *. Float.sin (2. *. Float.pi *. t /. period))

let think st i =
  let mean =
    Engine.Time.to_sec_f st.config.mean_think /. diurnal_factor st
  in
  let delay = Engine.Rng.exponential st.s_rng.(i) ~mean in
  Engine.Sim.Timer.arm_after st.sim st.s_timer.(i) (Engine.Time.of_sec_f delay)

let complete st i p =
  let ttlb =
    float_of_int (now_ns st - st.circ.(p + f_started_ns)) *. 1e-9
  in
  Engine.Stats.Sketch.add st.ttlb_all ttlb;
  if st.circ.(p + f_kind) = 1 then begin
    st.elephants_done <- st.elephants_done + 1;
    Engine.Stats.Sketch.add st.ttlb_elephants ttlb
  end
  else begin
    st.mice_done <- st.mice_done + 1;
    Engine.Stats.Sketch.add st.ttlb_mice ttlb
  end;
  (match st.exact with
  | Some samples -> Engine.Stats.Samples.add samples ttlb
  | None -> ());
  release st p;
  st.s_circ.(i) <- -1;
  st.completed <- st.completed + 1;
  if st.completed >= st.goal then Engine.Sim.stop st.sim else think st i

(* One RTT round: deliver against the bottleneck hop's fair share, then
   advance the window exactly like the controller does at round
   granularity — double while ramping, compensate to the BDP estimate
   (CircuitStart) or halve (slow start) on saturation, then track the
   share at one cell per round. *)
let round st i p =
  st.rounds <- st.rounds + 1;
  let h0 = st.circ.(p + f_hop0)
  and h1 = st.circ.(p + f_hop1)
  and h2 = st.circ.(p + f_hop2) in
  (* The share computation is written out inline with bare [<]
     comparisons: without flambda, a [share] helper or [Float.min]
     would box its float result, ~10 words on every round event.
     Kept local, the whole chain stays in registers. *)
  let s0 = st.cap_cps.(h0) /. float_of_int st.active.(h0) in
  let s1 = st.cap_cps.(h1) /. float_of_int st.active.(h1) in
  let s2 = st.cap_cps.(h2) /. float_of_int st.active.(h2) in
  let s01 = if s0 < s1 then s0 else s1 in
  let share_cps = if s01 < s2 then s01 else s2 in
  let rtt_s = float_of_int st.circ.(p + f_rtt_ns) *. 1e-9 in
  let bdp =
    let b = int_of_float (share_cps *. rtt_s) in
    if b < 1 then 1 else if b > st.config.cwnd_cap then st.config.cwnd_cap else b
  in
  let cwnd = st.circ.(p + f_cwnd) in
  let remaining = st.circ.(p + f_remaining) in
  let deliver =
    let d = if cwnd < bdp then cwnd else bdp in
    if d < remaining then d else remaining
  in
  st.circ.(p + f_remaining) <- remaining - deliver;
  st.delivered_cells <- st.delivered_cells + deliver;
  if remaining - deliver <= 0 then complete st i p
  else begin
    let cwnd' =
      if st.circ.(p + f_phase) = phase_fixed then cwnd
      else if st.circ.(p + f_phase) = phase_ramp then
        if cwnd >= bdp then begin
          st.circ.(p + f_phase) <- phase_steady;
          match st.config.strategy with
          | Circuitstart.Controller.Circuit_start -> bdp
          | Circuitstart.Controller.Slow_start ->
              let h = cwnd / 2 in
              if h < 1 then 1 else h
          | Circuitstart.Controller.Fixed _ -> cwnd
        end
        else
          let d = cwnd * 2 in
          if d > st.config.cwnd_cap then st.config.cwnd_cap else d
      else if cwnd < bdp then cwnd + 1
      else if cwnd > bdp then cwnd - 1
      else cwnd
    in
    if cwnd' <> cwnd then begin
      let delta = cwnd' - cwnd in
      charge_hop st h0 delta;
      charge_hop st h1 delta;
      charge_hop st h2 delta;
      st.circ.(p + f_cwnd) <- cwnd'
    end;
    Engine.Sim.Timer.arm_after st.sim st.s_timer.(i) st.c_rtt.(i)
  end

let register st r cwnd =
  st.active.(r) <- st.active.(r) + 1;
  charge_hop st r cwnd

let try_arrival st i =
  let rng = st.s_rng.(i) in
  let attempts = st.config.max_path_redraws + 1 in
  let admitted = ref false in
  let g = ref 0 and m = ref 0 and e = ref 0 in
  let tries = ref 0 in
  while (not !admitted) && !tries < attempts do
    if !tries > 0 then st.admission_redraws <- st.admission_redraws + 1;
    incr tries;
    e := draw_distinct st rng st.cum_exit (Some st.exit_ids) ~a:(-1) ~b:(-1);
    g := draw_distinct st rng st.cum_all None ~a:!e ~b:(-1);
    m := draw_distinct st rng st.cum_all None ~a:!e ~b:!g;
    admitted := admits st !g && admits st !m && admits st !e
  done;
  if not !admitted then begin
    st.refused_arrivals <- st.refused_arrivals + 1;
    think st i
  end
  else begin
    assert (st.free_top > 0);
    st.free_top <- st.free_top - 1;
    let p = st.free.(st.free_top) in
    if st.circ.(p + f_used) = 1 then st.pool_recycles <- st.pool_recycles + 1
    else st.circ.(p + f_used) <- 1;
    let elephant =
      st.config.elephant_fraction > 0.
      && Engine.Rng.float rng 1. < st.config.elephant_fraction
    in
    st.arrivals <- st.arrivals + 1;
    if elephant then st.elephant_arrivals <- st.elephant_arrivals + 1;
    st.circ.(p + f_hop0) <- !g;
    st.circ.(p + f_hop1) <- !m;
    st.circ.(p + f_hop2) <- !e;
    st.circ.(p + f_remaining) <-
      (if elephant then st.config.elephant_cells else st.config.mice_cells);
    (match st.config.strategy with
    | Circuitstart.Controller.Fixed w ->
        st.circ.(p + f_cwnd) <-
          Stdlib.min st.config.cwnd_cap (Stdlib.max 1 w);
        st.circ.(p + f_phase) <- phase_fixed
    | Circuitstart.Controller.Circuit_start | Circuitstart.Controller.Slow_start
      ->
        st.circ.(p + f_cwnd) <- st.config.initial_cwnd;
        st.circ.(p + f_phase) <- phase_ramp);
    st.circ.(p + f_kind) <- (if elephant then 1 else 0);
    st.circ.(p + f_started_ns) <- now_ns st;
    let rtt_ns =
      let access = Int64.to_int (Engine.Time.to_ns st.config.access_delay) in
      2 * (st.lat_ns.(!g) + st.lat_ns.(!m) + st.lat_ns.(!e) + (2 * access))
    in
    st.circ.(p + f_rtt_ns) <- rtt_ns;
    st.c_rtt.(i) <- Engine.Time.ns rtt_ns;
    let cwnd = st.circ.(p + f_cwnd) in
    register st !g cwnd;
    register st !m cwnd;
    register st !e cwnd;
    st.s_circ.(i) <- p;
    st.live <- st.live + 1;
    if st.live > st.peak_active then st.peak_active <- st.live;
    Engine.Sim.Timer.arm_after st.sim st.s_timer.(i) st.c_rtt.(i)
  end

let step st i =
  let p = st.s_circ.(i) in
  if p < 0 then try_arrival st i else round st i p

let run ?(seed = 42) config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Network_experiment.run: " ^ msg)
  in
  let rng = Engine.Rng.create seed in
  (* Fixed draw order: population first, then one stream per slot. *)
  let pop_rng = Engine.Rng.split rng in
  let slot_rngs = Array.init config.slots (fun _ -> Engine.Rng.split rng) in
  let specs =
    Array.of_list (Relay_gen.generate pop_rng config.population ~n:config.relays)
  in
  (* RTT-scale round timers and sub-second think timers dominate this
     workload; widen the wheel window to ~1.07 s (2^20 ns ticks, 1024
     slots) so the 10^5-strong steady-state timer population stays O(1)
     slot inserts instead of overflow-heap churn.  Geometry never
     affects firing order, only speed. *)
  let sim =
    Engine.Sim.create ~capacity:(Stdlib.max 256 config.slots) ~tick_bits:20
      ~wheel_slots:1024 ()
  in
  let n = config.relays in
  let cap_cps =
    Array.map
      (fun (s : Relay_gen.spec) ->
        Engine.Units.Rate.to_bytes_per_sec s.bandwidth
        /. float_of_int Backtap.Wire.cell_size)
      specs
  in
  let lat_ns =
    Array.map
      (fun (s : Relay_gen.spec) -> Int64.to_int (Engine.Time.to_ns s.latency))
      specs
  in
  let cum_all = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. cap_cps.(i);
    cum_all.(i) <- !acc
  done;
  let exit_ids =
    specs
    |> Array.to_list
    |> List.mapi (fun i (s : Relay_gen.spec) -> (i, s))
    |> List.filter (fun ((_, s) : int * Relay_gen.spec) ->
           List.mem Tor_model.Relay_info.Exit s.flags)
    |> List.map fst
    |> Array.of_list
  in
  if Array.length exit_ids = 0 then
    invalid_arg "Network_experiment.run: population has no exit relays";
  let cum_exit = Array.make (Array.length exit_ids) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i id ->
      acc := !acc +. cap_cps.(id);
      cum_exit.(i) <- !acc)
    exit_ids;
  let sketch () =
    Engine.Stats.Sketch.create ~bins:config.sketch_bins ~lo:0.
      ~hi:(Engine.Time.to_sec_f config.sketch_max)
      ()
  in
  let slots = config.slots in
  let st =
    {
      config;
      sim;
      cap_cps;
      lat_ns;
      active = Array.make n 0;
      load_cells = Array.make n 0;
      cum_all;
      exit_ids;
      cum_exit;
      circ = Array.make (slots * stride) 0;
      c_rtt = Array.make slots Engine.Time.zero;
      free = Array.init slots (fun i -> (slots - 1 - i) * stride);
      free_top = slots;
      s_timer = [||];
      s_rng = slot_rngs;
      s_circ = Array.make slots (-1);
      completed = 0;
      mice_done = 0;
      elephants_done = 0;
      arrivals = 0;
      elephant_arrivals = 0;
      refused_arrivals = 0;
      admission_redraws = 0;
      delivered_cells = 0;
      rounds = 0;
      pool_recycles = 0;
      live = 0;
      peak_active = 0;
      goal = lifetimes_goal config;
      ttlb_all = sketch ();
      ttlb_mice = sketch ();
      ttlb_elephants = sketch ();
      exact =
        (if config.retain_exact then Some (Engine.Stats.Samples.create ())
         else None);
      cell_bytes = Backtap.Wire.cell_size;
    }
  in
  st.s_timer <-
    Array.init slots (fun i -> Engine.Sim.Timer.create sim (fun () -> step st i));
  for i = 0 to slots - 1 do
    think st i
  done;
  if Engine.Time.(config.duration > Engine.Time.zero) then
    Engine.Sim.run sim ~until:config.duration
  else Engine.Sim.run sim;
  (* Tear down whatever was still in flight at the horizon, then audit
     the pool: with correct recycling every relay's occupancy returns
     to zero and the free list is full again. *)
  let abandoned = ref 0 in
  for i = 0 to slots - 1 do
    let p = st.s_circ.(i) in
    if p >= 0 then begin
      incr abandoned;
      release st p;
      st.s_circ.(i) <- -1
    end
  done;
  let orphaned_circuits = Array.fold_left ( + ) 0 st.active in
  let orphaned_cells = Array.fold_left ( + ) 0 st.load_cells in
  {
    relays = config.relays;
    slots = config.slots;
    completed = st.completed;
    mice = st.mice_done;
    elephants = st.elephants_done;
    arrivals = st.arrivals;
    elephant_arrivals = st.elephant_arrivals;
    refused_arrivals = st.refused_arrivals;
    admission_redraws = st.admission_redraws;
    abandoned = !abandoned;
    delivered_cells = st.delivered_cells;
    rounds = st.rounds;
    pool_recycles = st.pool_recycles;
    peak_active = st.peak_active;
    ttlb_all = st.ttlb_all;
    ttlb_mice = st.ttlb_mice;
    ttlb_elephants = st.ttlb_elephants;
    ttlb_exact =
      (match st.exact with
      | Some samples -> Engine.Stats.Samples.to_array samples
      | None -> [||]);
    orphaned_circuits;
    orphaned_cells;
    end_time = Engine.Sim.now sim;
    wall_events = Engine.Sim.events_executed sim;
  }

let run_many ?jobs tasks =
  Engine.Pool.map_list ?jobs (fun (seed, config) -> run ~seed config) tasks

type comparison = { circuit_start : result; slow_start : result }

(* Paired on the seed: identical population, arrival schedule, path and
   size draws — the curves differ only through the startup strategy's
   window trajectory. *)
let compare_strategies ?jobs ?(seed = 42) config =
  match
    run_many ?jobs
      [
        (seed, { config with strategy = Circuitstart.Controller.Circuit_start });
        (seed, { config with strategy = Circuitstart.Controller.Slow_start });
      ]
  with
  | [ circuit_start; slow_start ] -> { circuit_start; slow_start }
  | _ -> assert false

let q sk qq =
  if Engine.Stats.Sketch.count sk = 0 then nan
  else Engine.Stats.Sketch.quantile sk qq

let pp_result fmt (r : result) =
  Format.fprintf fmt
    "%d lifetimes (%d mice, %d elephants; %d arrivals, %d bulk) over %d \
     relays / %d slots"
    r.completed r.mice r.elephants r.arrivals r.elephant_arrivals r.relays
    r.slots;
  if r.refused_arrivals > 0 then
    Format.fprintf fmt ", %d refused arrivals" r.refused_arrivals;
  if r.abandoned > 0 then Format.fprintf fmt ", %d abandoned" r.abandoned;
  Format.fprintf fmt ", ttlb p50/p90/p99 %.3f/%.3f/%.3f s" (q r.ttlb_all 0.5)
    (q r.ttlb_all 0.9) (q r.ttlb_all 0.99);
  Format.fprintf fmt ", %d cells, %d rounds, peak %d live, %d recycles"
    r.delivered_cells r.rounds r.peak_active r.pool_recycles;
  if r.orphaned_circuits > 0 || r.orphaned_cells > 0 then
    Format.fprintf fmt ", ORPHANS %d circuits / %d cells" r.orphaned_circuits
      r.orphaned_cells

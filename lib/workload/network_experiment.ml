(* Consensus-scale network workload.

   The packet-level experiments (star / fault / overload) model every
   cell on every link; at thousands of relays and 10^5 concurrent
   circuits that is billions of events per run.  This experiment keeps
   the same timer-wheel engine and the same controller *semantics* but
   moves the data plane up one level: a circuit is advanced once per
   RTT round, delivering [min cwnd bdp] cells against its bottleneck
   hop's fair share.  One event per circuit per round is what makes a
   million circuit lifetimes per run affordable.

   All hot-path state is pooled flat records — the PR-4 free-list
   pattern generalized from [Backtap.Hop_sender]'s pending pool:

   - relay occupancy lives in [active]/[load_cells] int arrays charged
     and credited exactly like [Switchboard]'s budget counters (the
     admission predicate IS [Switchboard.within_budget]);
   - circuit records are strided slices of one flat int array recycled
     through an int-stack free list; arrival and teardown allocate
     nothing, and a round touches one cache-resident record;
   - TTLB analysis is streamed into fixed-bin {!Engine.Stats.Sketch}es,
     O(1) memory per circuit.

   Everything is a deterministic function of (seed, config): per-slot
   RNG streams are split from the master seed in a fixed order at
   setup, so runs are byte-identical across [--jobs 1/2/4] and paired
   CS-vs-SS comparisons share the identical population, arrival and
   size draws. *)

type config = {
  relays : int;
  slots : int;
  target_lifetimes : int;
  duration : Engine.Time.t;
  population : Relay_gen.config;
  budget : Tor_model.Switchboard.budget;
  mean_think : Engine.Time.t;
  diurnal_amplitude : float;
  diurnal_period : Engine.Time.t;
  elephant_fraction : float;
  elephant_cells : int;
  mice_cells : int;
  initial_cwnd : int;
  cwnd_cap : int;
  access_delay : Engine.Time.t;
  max_path_redraws : int;
  (* Relay churn, calibrated from the packet-level model: per-relay
     per-second hazards, tried once per [churn_tick] per relay.  A
     departing relay crashes with [crash_fraction] (instant kill) or
     drains (admissions refused, existing circuits run until
     [drain_grace] expires, then killed).  Clients select from a
     snapshot refreshed every [epoch_period], so draws race departures
     by up to one period.  [spare_relays] extra relays start down and
     join under the join hazard.  All zero hazards = churn machinery
     fully off (no timers, no extra draws — byte-identical to the
     churn-free workload). *)
  leave_hazard : float;
  join_hazard : float;
  crash_fraction : float;
  drain_grace : Engine.Time.t;
  epoch_period : Engine.Time.t;
  churn_tick : Engine.Time.t;
  spare_relays : int;
  strategy : Circuitstart.Controller.strategy;
  sketch_bins : int;
  sketch_max : Engine.Time.t;
  retain_exact : bool;
  (* Within-run parallelism: 0 = the classic single-domain engine
     (byte-identical to pre-shard releases); k >= 1 = the sharded
     engine, which partitions circuit slots into [min k slots]
     contiguous shards driven in lockstep exchange windows.  The
     sharded engine's results are identical for every positive k —
     shards choose only how the same schedule is executed — but differ
     (deterministically) from the classic engine's, whose relay
     occupancy updates are applied mid-window instead of at window
     boundaries. *)
  shards : int;
}

let default_config =
  {
    relays = 200;
    slots = 2_000;
    target_lifetimes = 0;
    duration = Engine.Time.zero;
    population = Relay_gen.default_config;
    budget = Tor_model.Switchboard.no_budget;
    mean_think = Engine.Time.ms 500;
    diurnal_amplitude = 0.;
    diurnal_period = Engine.Time.s 600;
    elephant_fraction = 0.05;
    elephant_cells = 4_096;
    mice_cells = 32;
    initial_cwnd = 1;
    cwnd_cap = 10_000;
    access_delay = Engine.Time.ms 10;
    max_path_redraws = 4;
    leave_hazard = 0.;
    join_hazard = 0.;
    crash_fraction = 0.5;
    drain_grace = Engine.Time.s 5;
    epoch_period = Engine.Time.s 10;
    churn_tick = Engine.Time.s 1;
    spare_relays = 0;
    strategy = Circuitstart.Controller.Circuit_start;
    sketch_bins = 2_048;
    sketch_max = Engine.Time.s 600;
    retain_exact = false;
    shards = 0;
  }

let validate_config c =
  if c.relays < 4 then Error "relays must be at least 4 (3 distinct hops + spare)"
  else if c.slots < 1 then Error "slots must be positive"
  else if c.target_lifetimes < 0 then Error "target_lifetimes must be >= 0"
  else if Engine.Time.is_negative c.duration then Error "duration must be >= 0"
  else if Engine.Time.(c.mean_think <= Engine.Time.zero) then
    Error "mean_think must be positive"
  else if
    not (Float.is_finite c.diurnal_amplitude)
    || c.diurnal_amplitude < 0. || c.diurnal_amplitude > 0.95
  then Error "diurnal_amplitude must be in [0, 0.95]"
  else if Engine.Time.(c.diurnal_period <= Engine.Time.zero) then
    Error "diurnal_period must be positive"
  else if
    not (Float.is_finite c.elephant_fraction)
    || c.elephant_fraction < 0. || c.elephant_fraction > 1.
  then Error "elephant_fraction must be in [0, 1]"
  else if c.elephant_cells < 1 || c.mice_cells < 1 then
    Error "transfer sizes must be positive"
  else if c.initial_cwnd < 1 then Error "initial_cwnd must be positive"
  else if c.cwnd_cap < c.initial_cwnd then Error "cwnd_cap must be >= initial_cwnd"
  else if c.max_path_redraws < 0 then Error "max_path_redraws must be >= 0"
  else if
    not (Float.is_finite c.leave_hazard) || c.leave_hazard < 0.
    || (not (Float.is_finite c.join_hazard)) || c.join_hazard < 0.
  then Error "churn hazards must be finite and >= 0"
  else if
    not (Float.is_finite c.crash_fraction)
    || c.crash_fraction < 0. || c.crash_fraction > 1.
  then Error "crash_fraction must be in [0, 1]"
  else if Engine.Time.is_negative c.drain_grace then
    Error "drain_grace must be >= 0"
  else if Engine.Time.(c.epoch_period <= Engine.Time.zero) then
    Error "epoch_period must be positive"
  else if Engine.Time.(c.churn_tick <= Engine.Time.zero) then
    Error "churn_tick must be positive"
  else if c.spare_relays < 0 then Error "spare_relays must be >= 0"
  else if (match c.budget.Tor_model.Switchboard.max_circuits with
           | Some n -> n < 1 | None -> false)
  then Error "budget.max_circuits must be positive when set"
  else if (match c.budget.Tor_model.Switchboard.max_queued_bytes with
           | Some n -> n < 1 | None -> false)
  then Error "budget.max_queued_bytes must be positive when set"
  else if c.shards < 0 then Error "shards must be >= 0"
  else if c.sketch_bins < 1 then Error "sketch_bins must be positive"
  else if Engine.Time.(c.sketch_max <= Engine.Time.zero) then
    Error "sketch_max must be positive"
  else
    match Relay_gen.validate_config c.population with
    | Error msg -> Error msg
    | Ok _ -> Ok c

let lifetimes_goal c =
  if c.target_lifetimes > 0 then c.target_lifetimes else 10 * c.slots

type result = {
  relays : int;
  slots : int;
  completed : int;
  mice : int;
  elephants : int;
  arrivals : int;
  elephant_arrivals : int;
  refused_arrivals : int;
  admission_redraws : int;
  abandoned : int;
  delivered_cells : int;
  rounds : int;
  pool_recycles : int;
  peak_active : int;
  ttlb_all : Engine.Stats.Sketch.t;
  ttlb_mice : Engine.Stats.Sketch.t;
  ttlb_elephants : Engine.Stats.Sketch.t;
  ttlb_exact : float array;
  orphaned_circuits : int;
  orphaned_cells : int;
  (* Churn accounting (all zero in churn-free runs). *)
  churn_departs : int;
  churn_crashes : int;
  churn_drains_completed : int;
  churn_restarts : int;
  churn_epochs : int;
  churn_kills : int;
  resumed : int;
  gone_draws : int;
  draining_refusals : int;
  rounds_through_down : int;
  depart_residue : int;
  end_time : Engine.Time.t;
  wall_events : int;
}

(* Test/fuzz hook: when set, teardown skips crediting the released
   circuit's occupancy back to its relays — the classic pool-recycling
   bug where a recycled record's charges outlive it.  The run then ends
   with nonzero [orphaned_circuits]/[orphaned_cells], which the check
   harness's pool oracle flags. *)
let unsafe_disable_pool_release = ref false

(* Test/fuzz hook: when set, a completed departure (crash or drain
   deadline) skips the kill sweep, so circuits keep extending through
   the departed relay and its occupancy survives the departure — the
   two regressions the churn oracles exist to catch
   ([rounds_through_down] and [depart_residue] go nonzero). *)
let unsafe_disable_churn_kill = ref false

(* Test/fuzz hook: when set, sharded runs skip the deferred outbox and
   apply relay occupancy deltas immediately during the parallel window
   — the broken exchange ordering the barrier protocol exists to
   prevent.  Mid-window application makes each shard's view depend on
   which slots it co-hosts, so shards=1 and shards=4 runs diverge; the
   check harness's shard differential catches the divergence and
   shrinks it to a replayable line. *)
let unsafe_unordered_exchange = ref false

(* Live relay status at round level (mirrors [Tor_model.Directory.status]). *)
let st_down = 0
let st_draining = 1
let st_up = 2

(* Departure floors: a leave draw is suppressed rather than letting the
   up population (or the up exit population) fall to where 3-distinct-
   hop paths become infeasible. *)
let min_up_relays = 4
let min_up_exits = 2

(* Phases of the round-level controller. *)
let phase_ramp = 0
let phase_steady = 1
let phase_fixed = 2  (* [Fixed _] strategy: the window never moves *)

(* Field offsets within one strided circuit record ([state.circ]). *)
let f_hop0 = 0
let f_hop1 = 1
let f_hop2 = 2
let f_remaining = 3
let f_cwnd = 4
let f_phase = 5
let f_kind = 6  (* 0 = mouse, 1 = elephant *)
let f_started_ns = 7
let f_rtt_ns = 8
let f_used = 9  (* the record has served at least one circuit *)
let stride = 10

type state = {
  config : config;
  sim : Engine.Sim.t;
  (* Relay population (struct of arrays). *)
  cap_cps : float array;  (* bandwidth in cells/sec *)
  lat_ns : int array;
  active : int array;  (* circuits currently routed through the relay *)
  load_cells : int array;  (* queued cells charged by those circuits *)
  cum_all : float array;  (* cumulative bandwidth weights, all relays *)
  exit_ids : int array;
  cum_exit : float array;
  (* Churn state.  [rstatus] is the live status; [vis] is the epoch
     snapshot clients draw from (copied from [rstatus] at each epoch
     boundary, draining relays stay visible).  Both all-up/all-visible
     in churn-free runs, where no churn timer ever fires. *)
  churn : bool;
  n_total : int;  (* relays + spare_relays *)
  rstatus : int array;
  vis : int array;
  is_exit : bool array;
  drain_deadline_ns : int array;
  churn_rng : Engine.Rng.t;
  mutable up_relays : int;
  mutable up_exits : int;
  (* Per-slot resume stash: a transfer killed by a departure keeps its
     remaining cells, kind and start time, and the slot's next admitted
     arrival carries them on — so churn-killed lifetimes pay the
     rebuild in their TTLB instead of vanishing. [-1] = no stash. *)
  s_res_rem : int array;
  s_res_kind : int array;
  s_res_started : int array;
  (* Circuit pool: flat records of [stride] ints each, free-list
     recycled.  One strided record, not parallel arrays: a round event
     touches every field of one circuit, so keeping the fields adjacent
     costs ~2 cache lines per event where 10 separate 10^5-entry arrays
     cost ~10 misses — at a million events per second that locality is
     the difference, not the arithmetic. *)
  circ : int array;  (* slots * stride; field offsets [f_*] below *)
  (* [c_rtt.(i)] is the boxed [Time.t] of session [i]'s current
     circuit's [f_rtt_ns], built once at arrival: without flambda every
     [Time.ns] call allocates a fresh Int64 box, and the round timer
     rearms ~50 times per lifetime.  Indexed per session (a slot hosts
     at most one circuit at a time). *)
  c_rtt : Engine.Time.t array;
  free : int array;
  mutable free_top : int;
  (* Session slots.  [s_timer] is filled right after construction (its
     callbacks close over the state record). *)
  mutable s_timer : Engine.Sim.Timer.t array;
  s_rng : Engine.Rng.t array;
  s_circ : int array;  (* pool index, or -1 while thinking *)
  (* Counters and streaming analysis. *)
  mutable completed : int;
  mutable mice_done : int;
  mutable elephants_done : int;
  mutable arrivals : int;
  mutable elephant_arrivals : int;
  mutable refused_arrivals : int;
  mutable admission_redraws : int;
  mutable delivered_cells : int;
  mutable rounds : int;
  mutable pool_recycles : int;
  mutable churn_departs : int;
  mutable churn_crashes : int;
  mutable churn_drains_completed : int;
  mutable churn_restarts : int;
  mutable churn_epochs : int;
  mutable churn_kills : int;
  mutable resumed : int;
  mutable gone_draws : int;
  mutable draining_refusals : int;
  mutable rounds_through_down : int;
  mutable depart_residue : int;
  mutable live : int;
  mutable peak_active : int;
  goal : int;
  ttlb_all : Engine.Stats.Sketch.t;
  ttlb_mice : Engine.Stats.Sketch.t;
  ttlb_elephants : Engine.Stats.Sketch.t;
  (* Exact TTLB tallies in integer nanoseconds, kept alongside the
     sketches' float sums: integer addition is associative, so the
     merged sketch's sum can be installed from these and stay
     bit-identical across shard counts ({!Stats.Sketch.set_sum}). *)
  mutable ns_all : int;
  mutable ns_mice : int;
  mutable ns_elephants : int;
  exact : Engine.Stats.Samples.t option;
  cell_bytes : int;
  (* Sharded-engine plumbing; inert on the classic path.  [sharded]
     states own the contiguous slot range [shard_lo, shard_hi) and
     share every relay-level array (and the slot-level stash/record
     arrays) with their [peers]; each has its own [sim], counters and
     sketches.  While [defer] is set — the parallel phase of an
     exchange window — relay occupancy writes are appended to the
     shard-local [ob_buf] outbox as (relay, d_active, d_load) int
     triples and applied at the barrier, so every shard reads the same
     frozen snapshot regardless of what its peers are doing. *)
  sharded : bool;
  mutable defer : bool;
  mutable peers : state array;
  slot_shard : int array;  (* slot -> owning shard; [||] classic *)
  mutable ob_buf : int array;
  mutable ob_len : int;
}

let now_ns st = Int64.to_int (Engine.Time.to_ns (Engine.Sim.now st.sim))

(* Bandwidth-weighted draw: binary search for the first cumulative
   weight exceeding a uniform draw over the total. *)
let draw_weighted rng cum =
  let n = Array.length cum in
  let u = Engine.Rng.float rng cum.(n - 1) in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) <= u then lo := mid + 1 else hi := mid
  done;
  !lo

(* Draw a relay id, mapping through [ids] when drawing from a
   flag-restricted sub-population (exits). *)
let draw_id rng cum ids =
  let i = draw_weighted rng cum in
  match ids with Some ids -> ids.(i) | None -> i

(* Draw a relay distinct from [a] and [b] and visible in the current
   snapshot: a few weighted redraws, then a deterministic bounded scan
   so selection can never loop.  [-1] when no eligible relay exists.
   With everything visible (churn-free) the draw sequence is identical
   to the historical unguarded version. *)
let draw_distinct st rng cum ids ~a ~b =
  let ok r = r <> a && r <> b && st.vis.(r) = 1 in
  let r = ref (draw_id rng cum ids) in
  let tries = ref 0 in
  while (not (ok !r)) && !tries < 8 do
    r := draw_id rng cum ids;
    incr tries
  done;
  if ok !r then !r
  else begin
    let n = st.n_total in
    let c = ref ((!r + 1) mod n) in
    let steps = ref 0 in
    while (not (ok !c)) && !steps < n do
      c := (!c + 1) mod n;
      incr steps
    done;
    if ok !c then !c else -1
  end

(* Exits are drawn first (no distinctness constraint yet), but must be
   snapshot-visible; the scan fallback walks the exit sub-population,
   not all relays.  [-1] when no exit is visible. *)
let draw_exit st rng =
  let r = ref (draw_id rng st.cum_exit (Some st.exit_ids)) in
  let tries = ref 0 in
  while st.vis.(!r) = 0 && !tries < 8 do
    r := draw_id rng st.cum_exit (Some st.exit_ids);
    incr tries
  done;
  if st.vis.(!r) = 1 then !r
  else begin
    let k = Array.length st.exit_ids in
    let start = ref 0 in
    Array.iteri (fun i id -> if id = !r then start := i) st.exit_ids;
    let c = ref ((!start + 1) mod k) in
    let steps = ref 0 in
    while st.vis.(st.exit_ids.(!c)) = 0 && !steps < k do
      c := (!c + 1) mod k;
      incr steps
    done;
    let cand = st.exit_ids.(!c) in
    if st.vis.(cand) = 1 then cand else -1
  end

let admits st r =
  Tor_model.Switchboard.within_budget st.config.budget ~circuits:st.active.(r)
    ~queued_bytes:(st.load_cells.(r) * st.cell_bytes)

(* Admission consults *live* status where the draw consulted the stale
   snapshot — this gap is the staleness race: a hop that departed since
   the epoch boundary answers like a GONE (down) or a draining REFUSED,
   failing the attempt. *)
let hop_ok st r =
  if not st.churn then admits st r
  else if st.rstatus.(r) = st_down then begin
    st.gone_draws <- st.gone_draws + 1;
    false
  end
  else if st.rstatus.(r) = st_draining then begin
    st.draining_refusals <- st.draining_refusals + 1;
    false
  end
  else admits st r

(* Append one occupancy delta to the shard's outbox.  The buffer only
   ever grows (length reset per window), so after the first few windows
   the hot path is three int stores — allocation-free. *)
let ob_push st r d_active d_load =
  let len = st.ob_len in
  if len + 3 > Array.length st.ob_buf then begin
    let grown = Array.make (Stdlib.max 192 (2 * Array.length st.ob_buf)) 0 in
    Array.blit st.ob_buf 0 grown 0 len;
    st.ob_buf <- grown
  end;
  st.ob_buf.(len) <- r;
  st.ob_buf.(len + 1) <- d_active;
  st.ob_buf.(len + 2) <- d_load;
  st.ob_len <- len + 3

let charge_hop st r delta_cells =
  if st.defer then ob_push st r 0 delta_cells
  else st.load_cells.(r) <- st.load_cells.(r) + delta_cells

(* Return a circuit record to the pool.  Crediting the occupancy back
   to the relays is the part a recycling bug forgets — modeled by the
   [unsafe_disable_pool_release] hook. *)
let unregister st r cwnd =
  if st.defer then ob_push st r (-1) (-cwnd)
  else begin
    st.active.(r) <- st.active.(r) - 1;
    st.load_cells.(r) <- st.load_cells.(r) - cwnd
  end

(* [p] is the record's base offset into [st.circ] (slot * stride) —
   the free list and the session slots store base offsets directly, so
   the hot path never multiplies. *)
let release st p =
  if not !unsafe_disable_pool_release then begin
    let cwnd = st.circ.(p + f_cwnd) in
    unregister st st.circ.(p + f_hop0) cwnd;
    unregister st st.circ.(p + f_hop1) cwnd;
    unregister st st.circ.(p + f_hop2) cwnd
  end;
  st.live <- st.live - 1;
  (* Sharded states pin slot [i]'s circuit to record [i * stride] (a
     slot hosts at most one circuit, and a shared free list would make
     pop order depend on the shard count), so only the classic engine
     recycles through the free list. *)
  if not st.sharded then begin
    st.free.(st.free_top) <- p;
    st.free_top <- st.free_top + 1
  end

let diurnal_factor st =
  let a = st.config.diurnal_amplitude in
  if a = 0. then 1.
  else
    let t = Engine.Time.to_sec_f (Engine.Sim.now st.sim) in
    let period = Engine.Time.to_sec_f st.config.diurnal_period in
    1. +. (a *. Float.sin (2. *. Float.pi *. t /. period))

let think st i =
  let mean =
    Engine.Time.to_sec_f st.config.mean_think /. diurnal_factor st
  in
  let delay = Engine.Rng.exponential st.s_rng.(i) ~mean in
  Engine.Sim.Timer.arm_after st.sim st.s_timer.(i) (Engine.Time.of_sec_f delay)

let complete st i p =
  let dt_ns = now_ns st - st.circ.(p + f_started_ns) in
  let ttlb = float_of_int dt_ns *. 1e-9 in
  st.ns_all <- st.ns_all + dt_ns;
  Engine.Stats.Sketch.add st.ttlb_all ttlb;
  if st.circ.(p + f_kind) = 1 then begin
    st.elephants_done <- st.elephants_done + 1;
    st.ns_elephants <- st.ns_elephants + dt_ns;
    Engine.Stats.Sketch.add st.ttlb_elephants ttlb
  end
  else begin
    st.mice_done <- st.mice_done + 1;
    st.ns_mice <- st.ns_mice + dt_ns;
    Engine.Stats.Sketch.add st.ttlb_mice ttlb
  end;
  (match st.exact with
  | Some samples -> Engine.Stats.Samples.add samples ttlb
  | None -> ());
  release st p;
  st.s_circ.(i) <- -1;
  st.completed <- st.completed + 1;
  if st.completed >= st.goal then Engine.Sim.stop st.sim else think st i

(* One RTT round: deliver against the bottleneck hop's fair share, then
   advance the window exactly like the controller does at round
   granularity — double while ramping, compensate to the BDP estimate
   (CircuitStart) or halve (slow start) on saturation, then track the
   share at one cell per round. *)
let round st i p =
  st.rounds <- st.rounds + 1;
  let h0 = st.circ.(p + f_hop0)
  and h1 = st.circ.(p + f_hop1)
  and h2 = st.circ.(p + f_hop2) in
  (* Churn oracle 1's counter: a correctly swept departure leaves no
     circuit to take a round through a down relay, so this stays zero
     unless the kill sweep is broken.  One boolean guard in churn-free
     runs. *)
  if
    st.churn
    && (st.rstatus.(h0) = st_down || st.rstatus.(h1) = st_down
        || st.rstatus.(h2) = st_down)
  then st.rounds_through_down <- st.rounds_through_down + 1;
  (* The share computation is written out inline with bare [<]
     comparisons: without flambda, a [share] helper or [Float.min]
     would box its float result, ~10 words on every round event.
     Kept local, the whole chain stays in registers. *)
  let s0 = st.cap_cps.(h0) /. float_of_int st.active.(h0) in
  let s1 = st.cap_cps.(h1) /. float_of_int st.active.(h1) in
  let s2 = st.cap_cps.(h2) /. float_of_int st.active.(h2) in
  let s01 = if s0 < s1 then s0 else s1 in
  let share_cps = if s01 < s2 then s01 else s2 in
  let rtt_s = float_of_int st.circ.(p + f_rtt_ns) *. 1e-9 in
  let bdp =
    let b = int_of_float (share_cps *. rtt_s) in
    if b < 1 then 1 else if b > st.config.cwnd_cap then st.config.cwnd_cap else b
  in
  let cwnd = st.circ.(p + f_cwnd) in
  let remaining = st.circ.(p + f_remaining) in
  let deliver =
    let d = if cwnd < bdp then cwnd else bdp in
    if d < remaining then d else remaining
  in
  st.circ.(p + f_remaining) <- remaining - deliver;
  st.delivered_cells <- st.delivered_cells + deliver;
  if remaining - deliver <= 0 then complete st i p
  else begin
    let cwnd' =
      if st.circ.(p + f_phase) = phase_fixed then cwnd
      else if st.circ.(p + f_phase) = phase_ramp then
        if cwnd >= bdp then begin
          st.circ.(p + f_phase) <- phase_steady;
          match st.config.strategy with
          | Circuitstart.Controller.Circuit_start
          | Circuitstart.Controller.Predictive ->
              bdp
          | Circuitstart.Controller.Slow_start ->
              let h = cwnd / 2 in
              if h < 1 then 1 else h
          | Circuitstart.Controller.Fixed _ -> cwnd
        end
        else begin
          match st.config.strategy with
          | Circuitstart.Controller.Predictive ->
              (* Round-level receding horizon: the per-round bdp *is*
                 the fitted model here, so the committed first step is
                 the doubling capped at the modelled target — the ramp
                 approaches capacity without overshooting past it. *)
              let d = cwnd * 2 in
              let d = if d > bdp then bdp else d in
              if d > st.config.cwnd_cap then st.config.cwnd_cap else d
          | Circuitstart.Controller.Circuit_start
          | Circuitstart.Controller.Slow_start
          | Circuitstart.Controller.Fixed _ ->
              let d = cwnd * 2 in
              if d > st.config.cwnd_cap then st.config.cwnd_cap else d
        end
      else begin
        match st.config.strategy with
        | Circuitstart.Controller.Predictive ->
            (* Steady state replans every round: step half the gap to
               the current bdp (at least one cell), converging in
               O(log gap) rounds where the reactive tracker walks. *)
            if cwnd < bdp then
              let g = (bdp - cwnd) / 2 in
              cwnd + (if g < 1 then 1 else g)
            else if cwnd > bdp then
              let g = (cwnd - bdp) / 2 in
              cwnd - (if g < 1 then 1 else g)
            else cwnd
        | Circuitstart.Controller.Circuit_start
        | Circuitstart.Controller.Slow_start
        | Circuitstart.Controller.Fixed _ ->
            if cwnd < bdp then cwnd + 1
            else if cwnd > bdp then cwnd - 1
            else cwnd
      end
    in
    if cwnd' <> cwnd then begin
      let delta = cwnd' - cwnd in
      charge_hop st h0 delta;
      charge_hop st h1 delta;
      charge_hop st h2 delta;
      st.circ.(p + f_cwnd) <- cwnd'
    end;
    Engine.Sim.Timer.arm_after st.sim st.s_timer.(i) st.c_rtt.(i)
  end

let register st r cwnd =
  if st.defer then ob_push st r 1 cwnd
  else begin
    st.active.(r) <- st.active.(r) + 1;
    st.load_cells.(r) <- st.load_cells.(r) + cwnd
  end

(* A departure completed at relay [r] (crash, or drain deadline): kill
   every circuit routed through it.  Each victim stashes a resume
   record on its slot (the transfer carries on over a fresh path with
   its original start time), releases its pooled record — crediting all
   three hops — and falls back to thinking.  [release] + [think] only
   recycle and rearm, so the sweep allocates nothing. *)
let kill_through st r =
  if not !unsafe_disable_churn_kill then
    for i = 0 to Array.length st.s_circ - 1 do
      let p = st.s_circ.(i) in
      if
        p >= 0
        && (st.circ.(p + f_hop0) = r || st.circ.(p + f_hop1) = r
            || st.circ.(p + f_hop2) = r)
      then begin
        st.churn_kills <- st.churn_kills + 1;
        st.s_res_rem.(i) <- st.circ.(p + f_remaining);
        st.s_res_kind.(i) <- st.circ.(p + f_kind);
        st.s_res_started.(i) <- st.circ.(p + f_started_ns);
        (* Timers are bound to their creating sim, so the release and
           the rearm must go through the slot's owning shard's state
           (the classic engine owns every slot). *)
        let ow = if st.sharded then st.peers.(st.slot_shard.(i)) else st in
        release ow p;
        st.s_circ.(i) <- -1;
        think ow i
      end
    done;
  (* Churn oracle 2's counter: a finished departure leaves zero circuit
     slots and zero queued cells at the relay — unless the sweep was
     sabotaged. *)
  if st.active.(r) <> 0 || st.load_cells.(r) <> 0 then
    st.depart_residue <- st.depart_residue + 1

(* One churn tick: a Bernoulli trial per relay in id order (the whole
   schedule is a pure function of [churn_rng]), with floors keeping the
   up population path-feasible.  Draining relays check their deadline;
   down relays try the join hazard. *)
let churn_step st =
  let c = st.config in
  let dt = Engine.Time.to_sec_f c.churn_tick in
  let p_leave = Float.min 1. (c.leave_hazard *. dt) in
  let p_join = Float.min 1. (c.join_hazard *. dt) in
  let now = now_ns st in
  for r = 0 to st.n_total - 1 do
    if st.rstatus.(r) = st_up then begin
      if p_leave > 0. && Engine.Rng.float st.churn_rng 1. < p_leave then
        if
          st.up_relays > min_up_relays
          && ((not st.is_exit.(r)) || st.up_exits > min_up_exits)
        then begin
          st.churn_departs <- st.churn_departs + 1;
          st.up_relays <- st.up_relays - 1;
          if st.is_exit.(r) then st.up_exits <- st.up_exits - 1;
          if
            c.crash_fraction > 0.
            && Engine.Rng.float st.churn_rng 1. < c.crash_fraction
          then begin
            st.churn_crashes <- st.churn_crashes + 1;
            st.rstatus.(r) <- st_down;
            kill_through st r
          end
          else begin
            st.rstatus.(r) <- st_draining;
            st.drain_deadline_ns.(r) <-
              now + Int64.to_int (Engine.Time.to_ns c.drain_grace)
          end
        end
    end
    else if st.rstatus.(r) = st_draining then begin
      if now >= st.drain_deadline_ns.(r) then begin
        st.churn_drains_completed <- st.churn_drains_completed + 1;
        st.rstatus.(r) <- st_down;
        kill_through st r
      end
    end
    else if p_join > 0. && Engine.Rng.float st.churn_rng 1. < p_join then begin
      st.churn_restarts <- st.churn_restarts + 1;
      st.rstatus.(r) <- st_up;
      st.up_relays <- st.up_relays + 1;
      if st.is_exit.(r) then st.up_exits <- st.up_exits + 1
    end
  done

(* The consensus refresh: clients start seeing the live population as
   of this instant (draining relays stay listed, down relays drop
   out).  Everything between boundaries is staleness by design. *)
let advance_epoch st =
  st.churn_epochs <- st.churn_epochs + 1;
  for r = 0 to st.n_total - 1 do
    st.vis.(r) <- (if st.rstatus.(r) = st_down then 0 else 1)
  done

let try_arrival st i =
  let rng = st.s_rng.(i) in
  let attempts = st.config.max_path_redraws + 1 in
  let admitted = ref false in
  let g = ref 0 and m = ref 0 and e = ref 0 in
  let tries = ref 0 in
  while (not !admitted) && !tries < attempts do
    if !tries > 0 then st.admission_redraws <- st.admission_redraws + 1;
    incr tries;
    e := draw_exit st rng;
    if !e >= 0 then begin
      g := draw_distinct st rng st.cum_all None ~a:!e ~b:(-1);
      if !g >= 0 then begin
        m := draw_distinct st rng st.cum_all None ~a:!e ~b:!g;
        if !m >= 0 then
          admitted := hop_ok st !g && hop_ok st !m && hop_ok st !e
      end
    end
  done;
  if not !admitted then begin
    st.refused_arrivals <- st.refused_arrivals + 1;
    think st i
  end
  else begin
    let p =
      if st.sharded then i * stride
      else begin
        assert (st.free_top > 0);
        st.free_top <- st.free_top - 1;
        st.free.(st.free_top)
      end
    in
    if st.circ.(p + f_used) = 1 then st.pool_recycles <- st.pool_recycles + 1
    else st.circ.(p + f_used) <- 1;
    (* A pending resume (this slot's transfer was killed by a
       departure) carries its remaining cells, kind and original start
       time onto the fresh path, so the rebuild gap lands in the TTLB
       tail; otherwise draw a fresh transfer. *)
    let resume = st.s_res_rem.(i) >= 0 in
    let elephant =
      if resume then st.s_res_kind.(i) = 1
      else
        st.config.elephant_fraction > 0.
        && Engine.Rng.float rng 1. < st.config.elephant_fraction
    in
    st.arrivals <- st.arrivals + 1;
    if elephant then st.elephant_arrivals <- st.elephant_arrivals + 1;
    st.circ.(p + f_hop0) <- !g;
    st.circ.(p + f_hop1) <- !m;
    st.circ.(p + f_hop2) <- !e;
    st.circ.(p + f_remaining) <-
      (if resume then st.s_res_rem.(i)
       else if elephant then st.config.elephant_cells
       else st.config.mice_cells);
    (match st.config.strategy with
    | Circuitstart.Controller.Fixed w ->
        st.circ.(p + f_cwnd) <-
          Stdlib.min st.config.cwnd_cap (Stdlib.max 1 w);
        st.circ.(p + f_phase) <- phase_fixed
    | Circuitstart.Controller.Circuit_start | Circuitstart.Controller.Slow_start
    | Circuitstart.Controller.Predictive ->
        st.circ.(p + f_cwnd) <- st.config.initial_cwnd;
        st.circ.(p + f_phase) <- phase_ramp);
    st.circ.(p + f_kind) <- (if elephant then 1 else 0);
    st.circ.(p + f_started_ns) <-
      (if resume then st.s_res_started.(i) else now_ns st);
    if resume then begin
      st.resumed <- st.resumed + 1;
      st.s_res_rem.(i) <- -1
    end;
    let rtt_ns =
      let access = Int64.to_int (Engine.Time.to_ns st.config.access_delay) in
      2 * (st.lat_ns.(!g) + st.lat_ns.(!m) + st.lat_ns.(!e) + (2 * access))
    in
    st.circ.(p + f_rtt_ns) <- rtt_ns;
    st.c_rtt.(i) <- Engine.Time.ns rtt_ns;
    let cwnd = st.circ.(p + f_cwnd) in
    register st !g cwnd;
    register st !m cwnd;
    register st !e cwnd;
    st.s_circ.(i) <- p;
    st.live <- st.live + 1;
    if st.live > st.peak_active then st.peak_active <- st.live;
    Engine.Sim.Timer.arm_after st.sim st.s_timer.(i) st.c_rtt.(i)
  end

let step st i =
  let p = st.s_circ.(i) in
  if p < 0 then try_arrival st i else round st i p

(* Shared construction for both engines: the population, the weight
   tables, the slot/relay arrays and the per-slot timers.  The RNG
   split order (population, then one stream per slot, then churn) is
   fixed and engine-independent, so the classic engine stays
   byte-identical to historical seeds and the sharded engine's draws
   are a pure function of (seed, slot) — independent of the shard
   count.  Returns the states in shard order; the classic engine is
   the single-state case. *)
let build_states ~seed config =
  let shards = config.shards in
  let rng = Engine.Rng.create seed in
  let pop_rng = Engine.Rng.split rng in
  let slot_rngs = Array.init config.slots (fun _ -> Engine.Rng.split rng) in
  let churn_rng = Engine.Rng.split rng in
  let n_total = config.relays + config.spare_relays in
  let specs =
    Array.of_list (Relay_gen.generate pop_rng config.population ~n:n_total)
  in
  let n = n_total in
  let cap_cps =
    Array.map
      (fun (s : Relay_gen.spec) ->
        Engine.Units.Rate.to_bytes_per_sec s.bandwidth
        /. float_of_int Backtap.Wire.cell_size)
      specs
  in
  let lat_ns =
    Array.map
      (fun (s : Relay_gen.spec) -> Int64.to_int (Engine.Time.to_ns s.latency))
      specs
  in
  let cum_all = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. cap_cps.(i);
    cum_all.(i) <- !acc
  done;
  let exit_ids =
    specs
    |> Array.to_list
    |> List.mapi (fun i (s : Relay_gen.spec) -> (i, s))
    |> List.filter (fun ((_, s) : int * Relay_gen.spec) ->
           List.mem Tor_model.Relay_info.Exit s.flags)
    |> List.map fst
    |> Array.of_list
  in
  if Array.length exit_ids = 0 then
    invalid_arg "Network_experiment.run: population has no exit relays";
  (* Spares (ids >= relays) start down; the initially-up population
     must be able to route on its own. *)
  if not (Array.exists (fun id -> id < config.relays) exit_ids) then
    invalid_arg "Network_experiment.run: no exit relay among the initial population";
  let cum_exit = Array.make (Array.length exit_ids) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i id ->
      acc := !acc +. cap_cps.(id);
      cum_exit.(i) <- !acc)
    exit_ids;
  let sketch () =
    Engine.Stats.Sketch.create ~bins:config.sketch_bins ~lo:0.
      ~hi:(Engine.Time.to_sec_f config.sketch_max)
      ()
  in
  let slots = config.slots in
  let sharded = shards > 0 in
  let k = if sharded then Shard.count ~slots ~shards else 1 in
  let slot_shard =
    if sharded then
      Array.init slots (fun i -> Shard.owner_of_slot ~slots ~shards i)
    else [||]
  in
  (* Relay-level and slot-level arrays are shared by every shard state:
     relay occupancy is frozen during parallel windows (writes go
     through the outboxes), and each slot's record/stash/rng cells are
     touched only by its owning shard between barriers. *)
  let active = Array.make n 0 in
  let load_cells = Array.make n 0 in
  let rstatus =
    Array.init n_total (fun r -> if r < config.relays then st_up else st_down)
  in
  let vis = Array.init n_total (fun r -> if r < config.relays then 1 else 0) in
  let is_exit =
    let a = Array.make n_total false in
    Array.iter (fun id -> a.(id) <- true) exit_ids;
    a
  in
  let drain_deadline_ns = Array.make n_total 0 in
  let up_exits =
    Array.fold_left
      (fun acc id -> if id < config.relays then acc + 1 else acc)
      0 exit_ids
  in
  let s_res_rem = Array.make slots (-1) in
  let s_res_kind = Array.make slots 0 in
  let s_res_started = Array.make slots 0 in
  let circ = Array.make (slots * stride) 0 in
  let c_rtt = Array.make slots Engine.Time.zero in
  let s_circ = Array.make slots (-1) in
  let states =
    Array.init k (fun j ->
        let span =
          if sharded then
            let lo, hi = Shard.slot_range ~slots ~shards j in
            hi - lo
          else slots
        in
        (* RTT-scale round timers and sub-second think timers dominate
           this workload; widen the wheel window to ~1.07 s (2^20 ns
           ticks, 1024 slots) so the 10^5-strong steady-state timer
           population stays O(1) slot inserts instead of overflow-heap
           churn.  Geometry never affects firing order, only speed. *)
        let sim =
          Engine.Sim.create ~capacity:(Stdlib.max 256 span) ~tick_bits:20
            ~wheel_slots:1024 ()
        in
        {
          config;
          sim;
          cap_cps;
          lat_ns;
          active;
          load_cells;
          cum_all;
          exit_ids;
          cum_exit;
          churn = config.leave_hazard > 0. || config.join_hazard > 0.;
          n_total;
          rstatus;
          vis;
          is_exit;
          drain_deadline_ns;
          churn_rng;
          up_relays = config.relays;
          up_exits;
          s_res_rem;
          s_res_kind;
          s_res_started;
          circ;
          c_rtt;
          free =
            (if sharded then [||]
             else Array.init slots (fun i -> (slots - 1 - i) * stride));
          free_top = (if sharded then 0 else slots);
          s_timer = [||];
          s_rng = slot_rngs;
          s_circ;
          completed = 0;
          mice_done = 0;
          elephants_done = 0;
          arrivals = 0;
          elephant_arrivals = 0;
          refused_arrivals = 0;
          admission_redraws = 0;
          delivered_cells = 0;
          rounds = 0;
          pool_recycles = 0;
          churn_departs = 0;
          churn_crashes = 0;
          churn_drains_completed = 0;
          churn_restarts = 0;
          churn_epochs = 0;
          churn_kills = 0;
          resumed = 0;
          gone_draws = 0;
          draining_refusals = 0;
          rounds_through_down = 0;
          depart_residue = 0;
          live = 0;
          peak_active = 0;
          goal = (if sharded then max_int else lifetimes_goal config);
          ttlb_all = sketch ();
          ttlb_mice = sketch ();
          ttlb_elephants = sketch ();
          ns_all = 0;
          ns_mice = 0;
          ns_elephants = 0;
          exact =
            (if config.retain_exact then Some (Engine.Stats.Samples.create ())
             else None);
          cell_bytes = Backtap.Wire.cell_size;
          sharded;
          defer = false;
          peers = [||];
          slot_shard;
          ob_buf = [||];
          ob_len = 0;
        })
  in
  Array.iter (fun st -> st.peers <- states) states;
  let owner i = states.(if sharded then slot_shard.(i) else 0) in
  (* One timer per slot, created on the owning shard's sim (a timer is
     bound to the sim that made it), in slot order — the same creation
     order the classic engine has always used. *)
  let s_timer =
    Array.init slots (fun i ->
        let ow = owner i in
        Engine.Sim.Timer.create ow.sim (fun () -> step ow i))
  in
  Array.iter (fun st -> st.s_timer <- s_timer) states;
  for i = 0 to slots - 1 do
    think (owner i) i
  done;
  states

(* Teardown shared by both engines: release whatever was still in
   flight at the horizon through each slot's owning state, then audit
   the pool — with correct recycling every relay's occupancy returns to
   zero. *)
let teardown states =
  let st0 = states.(0) in
  let abandoned = ref 0 in
  for i = 0 to Array.length st0.s_circ - 1 do
    let p = st0.s_circ.(i) in
    if p >= 0 then begin
      incr abandoned;
      let ow = if st0.sharded then states.(st0.slot_shard.(i)) else st0 in
      release ow p;
      st0.s_circ.(i) <- -1
    end
  done;
  let orphaned_circuits = Array.fold_left ( + ) 0 st0.active in
  let orphaned_cells = Array.fold_left ( + ) 0 st0.load_cells in
  (!abandoned, orphaned_circuits, orphaned_cells)

(* The historical single-domain drive loop, byte-identical to pre-shard
   releases: churn rides the sim's own [every] timers and occupancy
   updates apply in place as events execute. *)
let run_classic st =
  let config = st.config in
  let sim = st.sim in
  (* Churn timers only exist when a hazard is set: churn-free runs add
     zero events and zero per-event work beyond one boolean guard. *)
  if st.churn then begin
    let done_ () = st.completed >= st.goal in
    Engine.Sim.every sim config.churn_tick (fun () -> churn_step st)
      ~stop:done_;
    Engine.Sim.every sim config.epoch_period (fun () -> advance_epoch st)
      ~stop:done_
  end;
  if Engine.Time.(config.duration > Engine.Time.zero) then
    Engine.Sim.run sim ~until:config.duration
  else Engine.Sim.run sim;
  let abandoned, orphaned_circuits, orphaned_cells = teardown [| st |] in
  {
    relays = config.relays;
    slots = config.slots;
    completed = st.completed;
    mice = st.mice_done;
    elephants = st.elephants_done;
    arrivals = st.arrivals;
    elephant_arrivals = st.elephant_arrivals;
    refused_arrivals = st.refused_arrivals;
    admission_redraws = st.admission_redraws;
    abandoned;
    delivered_cells = st.delivered_cells;
    rounds = st.rounds;
    pool_recycles = st.pool_recycles;
    peak_active = st.peak_active;
    ttlb_all = st.ttlb_all;
    ttlb_mice = st.ttlb_mice;
    ttlb_elephants = st.ttlb_elephants;
    ttlb_exact =
      (match st.exact with
      | Some samples -> Engine.Stats.Samples.to_array samples
      | None -> [||]);
    orphaned_circuits;
    orphaned_cells;
    churn_departs = st.churn_departs;
    churn_crashes = st.churn_crashes;
    churn_drains_completed = st.churn_drains_completed;
    churn_restarts = st.churn_restarts;
    churn_epochs = st.churn_epochs;
    churn_kills = st.churn_kills;
    resumed = st.resumed;
    gone_draws = st.gone_draws;
    draining_refusals = st.draining_refusals;
    rounds_through_down = st.rounds_through_down;
    depart_residue = st.depart_residue;
    end_time = Engine.Sim.now sim;
    wall_events = Engine.Sim.events_executed sim;
  }

(* The sharded drive loop.  Time advances in exchange windows no wider
   than the smallest achievable circuit RTT: within a window every
   shard runs its own sim against the relay occupancy snapshot frozen
   at the last barrier (occupancy writes divert to per-shard outboxes),
   and at the barrier the outboxes — additive (relay, d_active,
   d_load) deltas — are applied by relay ownership, churn and epoch
   ticks fire at their exact times, and the stop conditions are
   evaluated.  The window bound guarantees a circuit's first round
   lands in a later window than its arrival, so every round already
   sees its own registration; everything else a round reads is either
   frozen shared state or slot-local, making the result a pure function
   of (seed, config) — the same for every positive shard count.
   Returns the result plus the worker domains' minor-words total. *)
let run_sharded ~seed states =
  let st0 = states.(0) in
  let k = Array.length states in
  let c = st0.config in
  let goal = lifetimes_goal c in
  let churn = st0.churn in
  let window_ns =
    let min_lat = Array.fold_left Stdlib.min max_int st0.lat_ns in
    let access = Int64.to_int (Engine.Time.to_ns c.access_delay) in
    Stdlib.max 1 (2 * ((3 * min_lat) + (2 * access)))
  in
  let tick_ns = Int64.to_int (Engine.Time.to_ns c.churn_tick) in
  let epoch_ns = Int64.to_int (Engine.Time.to_ns c.epoch_period) in
  let duration_ns = Int64.to_int (Engine.Time.to_ns c.duration) in
  let relay_owner =
    Array.init st0.n_total (fun r -> Shard.relay_shard ~seed ~shards:k r)
  in
  let team = Engine.Pool.Team.create ~shards:k () in
  Fun.protect ~finally:(fun () -> Engine.Pool.Team.shutdown team) @@ fun () ->
  let next_churn = ref tick_ns in
  let next_epoch = ref epoch_ns in
  let peak = ref 0 in
  let extra_events = ref 0 in
  let running = ref true in
  while !running do
    let now = now_ns st0 in
    let b = ref (now + window_ns) in
    if churn then begin
      if !next_churn < !b then b := !next_churn;
      if !next_epoch < !b then b := !next_epoch
    end;
    if duration_ns > 0 && duration_ns < !b then b := duration_ns;
    let b = !b in
    let until = Engine.Time.ns b in
    (* The [unsafe_unordered_exchange] hook reverts to mid-window
       in-place application — the broken ordering the barrier protocol
       exists to prevent; see the hook's comment. *)
    let defer = not !unsafe_unordered_exchange in
    Array.iter (fun st -> st.defer <- defer) states;
    Engine.Pool.Team.run team (fun j -> Engine.Sim.run states.(j).sim ~until);
    Array.iter (fun st -> st.defer <- false) states;
    if defer then begin
      (* Exchange: deltas are additive ints, so applying every outbox's
         entries for the relays a shard owns — disjoint writes by
         ownership — lands totals independent of application order and
         of the shard count. *)
      Engine.Pool.Team.run team (fun j ->
          let active = st0.active and load = st0.load_cells in
          for s = 0 to k - 1 do
            let src = states.(s) in
            let buf = src.ob_buf and len = src.ob_len in
            let idx = ref 0 in
            while !idx < len do
              let r = buf.(!idx) in
              if relay_owner.(r) = j then begin
                active.(r) <- active.(r) + buf.(!idx + 1);
                load.(r) <- load.(r) + buf.(!idx + 2)
              end;
              idx := !idx + 3
            done
          done)
    end;
    Array.iter (fun st -> st.ob_len <- 0) states;
    let live = Array.fold_left (fun acc st -> acc + st.live) 0 states in
    if live > !peak then peak := live;
    if churn && b = !next_churn then begin
      churn_step st0;
      incr extra_events;
      next_churn := !next_churn + tick_ns
    end;
    if churn && b = !next_epoch then begin
      advance_epoch st0;
      incr extra_events;
      next_epoch := !next_epoch + epoch_ns
    end;
    let completed =
      Array.fold_left (fun acc st -> acc + st.completed) 0 states
    in
    if completed >= goal || (duration_ns > 0 && b >= duration_ns) then
      running := false
  done;
  let abandoned, orphaned_circuits, orphaned_cells = teardown states in
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 states in
  let merged ns_total f =
    let acc = ref (f states.(0)) in
    for j = 1 to k - 1 do
      acc := Engine.Stats.Sketch.merge !acc (f states.(j))
    done;
    (* Install the order-independent sum from the integer tallies; the
       float sums the shards accumulated depend on completion order
       within each shard, which depends on the partition. *)
    Engine.Stats.Sketch.set_sum !acc (float_of_int ns_total *. 1e-9);
    !acc
  in
  let ttlb_exact =
    let parts =
      Array.map
        (fun st ->
          match st.exact with
          | Some samples -> Engine.Stats.Samples.to_array samples
          | None -> [||])
        states
    in
    let all = Array.concat (Array.to_list parts) in
    (* Per-shard completion order is partition-dependent; the sorted
       multiset is not. *)
    Array.sort Float.compare all;
    all
  in
  ( {
      relays = c.relays;
      slots = c.slots;
      completed = sum (fun st -> st.completed);
      mice = sum (fun st -> st.mice_done);
      elephants = sum (fun st -> st.elephants_done);
      arrivals = sum (fun st -> st.arrivals);
      elephant_arrivals = sum (fun st -> st.elephant_arrivals);
      refused_arrivals = sum (fun st -> st.refused_arrivals);
      admission_redraws = sum (fun st -> st.admission_redraws);
      abandoned;
      delivered_cells = sum (fun st -> st.delivered_cells);
      rounds = sum (fun st -> st.rounds);
      pool_recycles = sum (fun st -> st.pool_recycles);
      peak_active = !peak;
      ttlb_all = merged (sum (fun st -> st.ns_all)) (fun st -> st.ttlb_all);
      ttlb_mice = merged (sum (fun st -> st.ns_mice)) (fun st -> st.ttlb_mice);
      ttlb_elephants =
        merged
          (sum (fun st -> st.ns_elephants))
          (fun st -> st.ttlb_elephants);
      ttlb_exact;
      orphaned_circuits;
      orphaned_cells;
      churn_departs = sum (fun st -> st.churn_departs);
      churn_crashes = sum (fun st -> st.churn_crashes);
      churn_drains_completed = sum (fun st -> st.churn_drains_completed);
      churn_restarts = sum (fun st -> st.churn_restarts);
      churn_epochs = sum (fun st -> st.churn_epochs);
      churn_kills = sum (fun st -> st.churn_kills);
      resumed = sum (fun st -> st.resumed);
      gone_draws = sum (fun st -> st.gone_draws);
      draining_refusals = sum (fun st -> st.draining_refusals);
      rounds_through_down = sum (fun st -> st.rounds_through_down);
      depart_residue = sum (fun st -> st.depart_residue);
      end_time = Engine.Sim.now st0.sim;
      wall_events =
        sum (fun st -> Engine.Sim.events_executed st.sim) + !extra_events;
    },
    Engine.Pool.Team.minor_words team )

let run_with_words ~seed config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Network_experiment.run: " ^ msg)
  in
  let states = build_states ~seed config in
  if config.shards = 0 then (run_classic states.(0), 0.)
  else run_sharded ~seed states

let run ?(seed = 42) config = fst (run_with_words ~seed config)

let run_instrumented ?(seed = 42) config =
  let w0 = Gc.minor_words () in
  let result, team_words = run_with_words ~seed config in
  (result, Gc.minor_words () -. w0 +. team_words)

let run_many ?jobs tasks =
  Engine.Pool.map_list ?jobs (fun (seed, config) -> run ~seed config) tasks

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

(* Paired on the seed: identical population, arrival schedule, path and
   size draws — the curves differ only through the startup strategy's
   window trajectory. *)
let compare_strategies ?jobs ?(seed = 42) config =
  match
    run_many ?jobs
      [
        (seed, { config with strategy = Circuitstart.Controller.Circuit_start });
        (seed, { config with strategy = Circuitstart.Controller.Slow_start });
        (seed, { config with strategy = Circuitstart.Controller.Predictive });
      ]
  with
  | [ circuit_start; slow_start; predictive ] ->
      { circuit_start; slow_start; predictive }
  | _ -> assert false

let q sk qq =
  if Engine.Stats.Sketch.count sk = 0 then nan
  else Engine.Stats.Sketch.quantile sk qq

let pp_result fmt (r : result) =
  Format.fprintf fmt
    "%d lifetimes (%d mice, %d elephants; %d arrivals, %d bulk) over %d \
     relays / %d slots"
    r.completed r.mice r.elephants r.arrivals r.elephant_arrivals r.relays
    r.slots;
  if r.refused_arrivals > 0 then
    Format.fprintf fmt ", %d refused arrivals" r.refused_arrivals;
  if r.abandoned > 0 then Format.fprintf fmt ", %d abandoned" r.abandoned;
  Format.fprintf fmt ", ttlb p50/p90/p99 %.3f/%.3f/%.3f s" (q r.ttlb_all 0.5)
    (q r.ttlb_all 0.9) (q r.ttlb_all 0.99);
  Format.fprintf fmt ", %d cells, %d rounds, peak %d live, %d recycles"
    r.delivered_cells r.rounds r.peak_active r.pool_recycles;
  if r.orphaned_circuits > 0 || r.orphaned_cells > 0 then
    Format.fprintf fmt ", ORPHANS %d circuits / %d cells" r.orphaned_circuits
      r.orphaned_cells;
  if r.churn_departs > 0 || r.churn_restarts > 0 then begin
    Format.fprintf fmt
      ";@ churn: %d departs (%d crashes, %d drains done), %d restarts, %d        epochs, %d kills, %d resumed, %d gone draws, %d draining refusals"
      r.churn_departs r.churn_crashes r.churn_drains_completed
      r.churn_restarts r.churn_epochs r.churn_kills r.resumed r.gone_draws
      r.draining_refusals;
    if r.rounds_through_down > 0 || r.depart_residue > 0 then
      Format.fprintf fmt ", VIOLATIONS %d rounds-through-down / %d residue"
        r.rounds_through_down r.depart_residue
  end

(** The paper's §3 future work: reacting to capacity changes.

    A single circuit ramps up against a bottleneck; mid-transfer the
    bottleneck's access-link rate is multiplied by a step factor.  The
    base algorithm only grows by one cell per RTT afterwards; with
    {!Circuitstart.Params.t.adaptive} set, consecutive calm rounds
    re-enter ramp-up and the window doubles towards the new optimum.
    The result records how long the source took to reach a fraction of
    the new optimal window after the step. *)

type config = {
  relay_count : int;
  bottleneck_distance : int;  (** 1-based relay index, as in traces. *)
  bottleneck_rate : Engine.Units.Rate.t;  (** Before the step. *)
  stepped_rate : Engine.Units.Rate.t;  (** After the step. *)
  fast_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  step_after : Engine.Time.t;  (** Delay from transfer start to the step. *)
  transfer_bytes : int;  (** Must outlast the horizon comfortably. *)
  adaptive : bool;
  params : Circuitstart.Params.t;  (** [adaptive]/[re_probe_after] overridden. *)
  target_fraction : float;  (** Reaction = reaching this share of the new optimum. *)
  horizon : Engine.Time.t;
}

val default_config : config
(** 3 relays, bottleneck at distance 2, 3 → 12 Mbit/s step 2 s into an
    8 MiB transfer, reaction target 0.7, 20 s horizon. *)

val validate_config : config -> (config, string) result

type result = {
  optimal_before_cells : int;
  optimal_after_cells : int;
  cwnd_at_step : float;  (** Source window when the step happened. *)
  reaction_time : Engine.Time.t option;
      (** Step → source window first reaches
          [target_fraction * optimal_after]; [None] if never. *)
  final_cwnd : float;  (** Source window at the horizon. *)
  source_cwnd : (Engine.Time.t * float) array;
      (** Full source trace, time since transfer start. *)
  wall_events : int;  (** Simulator events executed (cost metric). *)
}

val run : ?seed:int -> config -> result

val run_many : ?jobs:int -> ?seed:int -> config list -> result list
(** One {!run} per config on a domain pool of [jobs] workers
    ({!Engine.Pool.default_jobs} when omitted), all with the same
    [seed].  Results are in config order and byte-identical to mapping
    {!run} sequentially. *)

(** Sharing the bottleneck with unresponsive background traffic.

    The paper motivates tailored transports with the wish that Tor
    traffic "behave much like background traffic", i.e. not fight other
    users of a relay aggressively.  Here a single CircuitStart circuit
    shares the bottleneck relay's uplink with a CBR flow consuming a
    configurable fraction of its capacity: a delay-based scheme should
    settle onto roughly the *residual* capacity, with a window near
    [(1 - load) * W*]. *)

type config = {
  relay_count : int;
  bottleneck_distance : int;
  bottleneck_rate : Engine.Units.Rate.t;
  fast_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  cbr_load : float;  (** Fraction of the bottleneck rate, in [0, 0.9]. *)
  horizon : Engine.Time.t;
}

val default_config : config
(** 3 relays, bottleneck at distance 2 at 4 Mbit/s, 4 MiB transfer,
    CircuitStart, 25 % CBR load, 30 s horizon. *)

val validate_config : config -> (config, string) result

type result = {
  optimal_cells : int;  (** W* of the unloaded path. *)
  expected_cells : float;  (** [(1 - load) * W*], the fair target. *)
  settled_cells : float;
  time_to_last_byte : Engine.Time.t option;
  cbr_packets : int;  (** Background packets emitted. *)
  goodput_share : float option;
      (** Circuit goodput / bottleneck capacity; with load ρ the fair
          share is ≈ 1 - ρ. *)
  wall_events : int;  (** Simulator events executed (cost metric). *)
}

val run : ?seed:int -> config -> result

val run_many : ?jobs:int -> ?seed:int -> config list -> result list
(** One {!run} per config on a domain pool of [jobs] workers
    ({!Engine.Pool.default_jobs} when omitted), all with the same
    [seed].  Results are in config order and byte-identical to mapping
    {!run} sequentially. *)

(** Flash crowd against budgeted relays: overload protection end to
    end.

    A small star of [relay_count] relays, every one carrying the same
    resource budget ({!Tor_model.Switchboard.budget}), and [sessions]
    independent clients arriving as a Poisson process (exponential
    inter-arrival times, mean [mean_interarrival]) all transferring to
    one server.  The crowd drives the relays over budget, exercising
    the full protection stack: CREATEs are refused under admission
    control (sessions back off and redraw without excluding the busy
    relay), byte-budget overflows trigger the OOM responder (the
    heaviest circuit is destroyed, its session rebuilds elsewhere), and
    the result reports the build-refusal rate, OOM kills, per-session
    time-to-last-byte and aggregate goodput.

    {!compare_strategies} pairs CircuitStart against slow start on the
    identical arrival schedule and path draws: the aggressive ramp
    queues more bytes at the relays sooner, so the comparison shows
    what the startup strategy costs (or saves) under contention. *)

type config = {
  relay_count : int;
      (** Must exceed [hops]: refused sessions need spare relays to
          redraw from. *)
  hops : int;
  relay_base_rate : Engine.Units.Rate.t;
      (** Tier 0 bandwidth; relay [i] gets [base * (1 + i mod 4)]. *)
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  sessions : int;  (** Size of the crowd (one client endpoint each). *)
  mean_interarrival : Engine.Time.t;
      (** Mean of the exponential inter-arrival gaps. *)
  transfer_bytes : int;  (** Per session. *)
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  link_queue : Netsim.Nqueue.capacity;
  max_circuits : int option;
      (** Per-relay circuit-count budget; [None] = unlimited. *)
  max_queued_bytes : int option;
      (** Per-relay queued-cell-byte budget; [None] = unlimited. *)
  selection : Tor_model.Directory.selection;
  max_rebuilds : int;
      (** Per-session rebuild budget — refusals consume it too. *)
  rto_min : Engine.Time.t;
  rto_initial : Engine.Time.t;
  max_retries : int;
  horizon : Engine.Time.t;
}

val default_config : config
(** A 12-session crowd (mean gap 150 ms) of 64 KiB transfers over 3 of
    4 relays, each relay budgeted at 6 circuits and 48 KiB of queued
    cells — tight enough that both refusals and OOM kills occur. *)

val validate_config : config -> (config, string) result

type result = {
  sessions : int;
  completed : int;
  exhausted : int;  (** Sessions that gave up (budget or no path). *)
  timed_out : int;  (** Sessions still running at [horizon]. *)
  rebuilds : int;  (** Summed over sessions. *)
  refused_builds : int;
      (** Client-side build attempts that ended in a REFUSED, summed
          over sessions. *)
  admitted : int;  (** CREATEs accepted, summed over relays. *)
  refusals : int;  (** CREATEs refused, summed over relays. *)
  refusal_rate : float;
      (** [refusals / (admitted + refusals)]; 0 when no CREATE was
          processed. *)
  oom_kills : int;
      (** Circuits destroyed by relay OOM responders. *)
  overload_enters : int;
      (** Relay transitions into the overloaded state. *)
  delivered_bytes : int;
  mean_ttlb : Engine.Time.t option;
      (** Mean session arrival→completion span, over completed
          sessions. *)
  max_ttlb : Engine.Time.t option;
  goodput_bps : float;
      (** Delivered bits per second from the first arrival to the last
          terminal instant. *)
  relay_byte_hwm : int;
      (** Highest queued-byte occupancy any relay ever reached —
          bounded by [max_queued_bytes] plus one in-flight charge. *)
  events : Engine.Trace.event list;
      (** Refused / oom-kill / overload / rebuild / resume log. *)
  wall_events : int;
}

val run :
  ?seed:int ->
  ?probe:(Engine.Sim.t -> Netsim.Link.t list -> Backtap.Transfer.t -> unit) ->
  ?relay_probe:(Engine.Sim.t -> Tor_model.Relay_ctl.t list -> unit) ->
  config ->
  result
(** Deterministic per [(seed, config)].  Raises [Invalid_argument] if
    the config does not validate.  [probe] fires once per deployed
    circuit generation (before it starts), as in
    {!Recovery_experiment.run}; [relay_probe] fires once, right after
    the network is finalized and budgets are set, with every budgeted
    relay's control automaton — the budget and teardown oracles attach
    through it.  Probes must be passive. *)

val run_many : ?jobs:int -> (int * config) list -> result list
(** One {!run} per replicate on a domain pool; results in task order,
    byte-identical to sequential mapping. *)

type comparison = {
  circuit_start : result;
  slow_start : result;
  predictive : result;
}

val compare_strategies : ?jobs:int -> ?seed:int -> config -> comparison
(** All three startup strategies against the identical seed — same
    arrivals, same path draws.  The config's own [strategy] field is
    ignored. *)

val pp_result : Format.formatter -> result -> unit

type config = {
  relay_count : int;
  bottleneck_distance : int;
  bottleneck_rate : Engine.Units.Rate.t;
  fast_rate : Engine.Units.Rate.t;
  access_delay : Engine.Time.t;
  endpoint_rate : Engine.Units.Rate.t;
  transfer_bytes : int;
  strategy : Circuitstart.Controller.strategy;
  params : Circuitstart.Params.t;
  cbr_load : float;
  horizon : Engine.Time.t;
}

let default_config =
  {
    relay_count = 3;
    bottleneck_distance = 2;
    bottleneck_rate = Engine.Units.Rate.mbit 4;
    fast_rate = Engine.Units.Rate.mbit 50;
    access_delay = Engine.Time.ms 10;
    endpoint_rate = Engine.Units.Rate.mbit 100;
    transfer_bytes = Engine.Units.mib 4;
    strategy = Circuitstart.Controller.Circuit_start;
    params = Circuitstart.Params.default;
    cbr_load = 0.25;
    horizon = Engine.Time.s 30;
  }

let validate_config c =
  if c.relay_count < 1 then Error "relay_count must be positive"
  else if c.bottleneck_distance < 1 || c.bottleneck_distance > c.relay_count then
    Error "bottleneck_distance out of range"
  else if c.transfer_bytes <= 0 then Error "transfer_bytes must be positive"
  else if not (Float.is_finite c.cbr_load) || c.cbr_load < 0. || c.cbr_load > 0.9 then
    Error "cbr_load must be in [0, 0.9]"
  else if Engine.Time.(c.horizon <= Engine.Time.zero) then Error "horizon must be positive"
  else
    match Circuitstart.Params.validate c.params with
    | Ok _ -> Ok c
    | Error msg -> Error msg

type result = {
  optimal_cells : int;
  expected_cells : float;
  settled_cells : float;
  time_to_last_byte : Engine.Time.t option;
  cbr_packets : int;
  goodput_share : float option;
  wall_events : int;
}

let run ?(seed = 5) config =
  let config =
    match validate_config config with
    | Ok c -> c
    | Error msg -> invalid_arg ("Contention_experiment.run: " ^ msg)
  in
  ignore (Engine.Rng.create seed : Engine.Rng.t);
  let sim = Engine.Sim.create () in
  let b = Tor_net.builder sim () in
  List.iteri
    (fun i () ->
      let rate =
        if i + 1 = config.bottleneck_distance then config.bottleneck_rate
        else config.fast_rate
      in
      Tor_net.add_relay b
        { Relay_gen.nickname = Printf.sprintf "relay%d" i; bandwidth = rate;
          latency = config.access_delay;
          flags =
            [ Tor_model.Relay_info.Guard; Tor_model.Relay_info.Exit;
              Tor_model.Relay_info.Fast; Tor_model.Relay_info.Stable ] })
    (List.init config.relay_count (fun _ -> ()));
  let client =
    Tor_net.add_endpoint b ~name:"client" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let server =
    Tor_net.add_endpoint b ~name:"server" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  (* A dedicated sink leaf absorbs the background traffic. *)
  let cbr_sink =
    Tor_net.add_endpoint b ~name:"cbr-sink" ~rate:config.endpoint_rate
      ~delay:config.access_delay
  in
  let net = Tor_net.finalize b in
  (* The sink leaf plays no Tor role: repurpose its aux slot so the CBR
     packets are absorbed instead of counting as orphans. *)
  Tor_model.Switchboard.set_aux_handler (Tor_net.switchboard net cbr_sink) (fun _ -> ());
  let relays = Tor_model.Directory.relays (Tor_net.directory net) in
  let bottleneck_node =
    (List.nth relays (config.bottleneck_distance - 1)).Tor_model.Relay_info.node
  in
  let circuit =
    Tor_model.Circuit.make
      ~id:(Tor_model.Circuit_id.next (Tor_net.circuit_ids net))
      ~client ~relays ~server
  in
  let path = Tor_net.path_model net circuit in
  let optimal = Optmodel.Optimal_window.source_window_cells path in
  (* Background load: emitted *from* the bottleneck relay (as if it
     served other circuits), crossing exactly its uplink. *)
  let cbr =
    if config.cbr_load > 0. then
      Some
        (Netsim.Cbr_source.start (Tor_net.network net) ~src:bottleneck_node ~dst:cbr_sink
           ~rate:(Engine.Units.Rate.scale config.bottleneck_rate config.cbr_load)
           ())
    else None
  in
  let transfer = ref None in
  Tor_model.Circuit_builder.build
    (Tor_net.switchboard net client)
    circuit
    ~on_done:(fun outcome ->
      match outcome with
      | Tor_model.Circuit_builder.Failed msg ->
          failwith ("Contention_experiment: establishment failed: " ^ msg)
      | Tor_model.Circuit_builder.Refused _ | Tor_model.Circuit_builder.Gone _ ->
          (* No budgets are set in this experiment, so a refusal is a bug. *)
          failwith "Contention_experiment: establishment refused"
      | Tor_model.Circuit_builder.Established _ ->
          let d =
            Backtap.Transfer.deploy
              ~node_of:(Tor_net.backtap_node net)
              ~circuit ~bytes:config.transfer_bytes ~strategy:config.strategy
              ~params:config.params
              ~on_complete:(fun _ -> Engine.Sim.stop sim)
              ()
          in
          transfer := Some d;
          Backtap.Transfer.start d)
    ();
  Engine.Sim.run sim ~until:config.horizon;
  let d =
    match !transfer with
    | Some d -> d
    | None -> failwith "Contention_experiment: transfer never started"
  in
  let settled =
    match Backtap.Transfer.sender_at d 0 with
    | Some s -> float_of_int (Circuitstart.Controller.cwnd (Backtap.Hop_sender.controller s))
    | None -> nan
  in
  let ttlb = Backtap.Transfer.time_to_last_byte d in
  let goodput_share =
    Option.map
      (fun t ->
        let goodput = float_of_int config.transfer_bytes /. Engine.Time.to_sec_f t in
        goodput /. Engine.Units.Rate.to_bytes_per_sec config.bottleneck_rate)
      ttlb
  in
  {
    optimal_cells = optimal;
    expected_cells = (1. -. config.cbr_load) *. float_of_int optimal;
    settled_cells = settled;
    time_to_last_byte = ttlb;
    cbr_packets = (match cbr with Some c -> Netsim.Cbr_source.packets_sent c | None -> 0);
    goodput_share;
    wall_events = Engine.Sim.events_executed sim;
  }

let run_many ?jobs ?seed configs =
  Engine.Pool.map_list ?jobs (fun config -> run ?seed config) configs
